//! Library backing the `bitdissem` command-line tool.
//!
//! Subcommands:
//!
//! * `list` — the experiment registry;
//! * `run <id> [--scale smoke|standard|full] [--seed N] [--threads T] [--engine E]
//!   [--csv] [--trace-out PATH] [--trace-every N] [--metrics] [--progress]
//!   [--checkpoint-dir DIR] [--resume]` — run an experiment and print its
//!   report, optionally writing a JSONL trace, printing run metrics to
//!   stderr, and persisting per-replication checkpoints (so an interrupted
//!   sweep can be resumed with `--resume`);
//! * `analyze <protocol> [--ell L] [--n N]` — bias polynomial, roots, sign
//!   intervals and the Theorem-12 witness of a protocol;
//! * `simulate <protocol> [--ell L] [--n N] [--seed S] [--budget B]
//!   [--sequential]` — one adversarial run with a trajectory summary;
//! * `exact <protocol> [--ell L] [--n N]` — exact expected hitting times
//!   (small `n`);
//! * `markov [--grid P:L,…] [--ns N1,N2,…] [--eps E] [--t-max T]
//!   [--verify-n V] [--label L] [--out DIR]` — exact large-`n` analytics on
//!   the ε-truncated sparse chain: hitting times (banded LU), mixing
//!   rounds, survival quantiles and curves, spectral gaps at small `n`, a
//!   sparse-vs-dense verification gate, and a versioned
//!   `MARKOV_<label>.json` record;
//! * `bench [--scale S] [--seed N] [--label L] [--out DIR]
//!   [--max-workers W] [--compare BASELINE.json] [--check-only]` — run the
//!   macro-benchmark suite, write a schema-versioned `BENCH_<label>.json`,
//!   and optionally compare against a baseline for a regression verdict;
//! * `trace <run.jsonl>` — offline analytics over a recorded trace:
//!   consensus-time and latency summaries plus theory-conformance checks
//!   (Proposition 4 jump bound, Proposition 5 drift band);
//! * `conform [--scale S] [--seed N] [--label L] [--out DIR]
//!   [--skip-faults]` — the differential conformance matrix: every
//!   simulator backend driven from identical grids, KS-gated against a
//!   shared false-alarm budget, plus checkpoint fault-injection scenarios;
//!   writes a schema-versioned `CONFORM_<label>.json`;
//! * `watch (--socket PATH [--snapshots N] | --prom FILE [--reconcile M.jsonl])`
//!   — live telemetry view over a run's `--telemetry-socket` stream, or a
//!   one-shot Prometheus exposition check with optional reconciliation
//!   against the counter deltas recorded in a sweep's `manifests.jsonl`.
//!
//! All output goes through a returned `String` so the commands are unit
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;

use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::Arc;

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_conformance::{
    run_differential, run_fault_scenarios, sparse_dense_check, ConformConfig, ConformReport,
    ConformScale, CONFORM_SCHEMA_VERSION,
};
use bitdissem_core::dynamics::{self, BoxedProtocol};
use bitdissem_core::{Protocol, ProtocolExt};
use bitdissem_experiments::bench::{run_all as bench_run_all, BenchCtx};
use bitdissem_experiments::trace::TraceAccumulator;
use bitdissem_experiments::{registry, ReplicationEngine, RunConfig, Scale};
use bitdissem_markov::absorbing::{expected_hitting_times, quantile_from_survival};
use bitdissem_markov::{
    expected_hitting_times_sparse, mixing_time_extremes_sparse, spectral_gap,
    survival_curve_sparse, AggregateChain, SparseChain,
};
use bitdissem_obs::durable::atomic_replace;
use bitdissem_obs::json::Value;
use bitdissem_obs::{
    detect_format, stream_trace, BenchRecord, CheckpointLog, ColumnarReader, ColumnarSink,
    EventSink, JsonlSink, Obs, Progress, TraceFormat,
};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::{Outcome, Simulator};
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_sim::trajectory::Trajectory;
use bitdissem_stats::table::fmt_num;

use args::Args;

/// Exit status of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Command succeeded.
    Ok,
    /// Command ran but a directional check failed.
    CheckFailed,
    /// Bad usage.
    UsageError,
}

impl Status {
    /// Process exit code.
    #[must_use]
    pub fn code(self) -> i32 {
        match self {
            Status::Ok => 0,
            Status::CheckFailed => 1,
            Status::UsageError => 2,
        }
    }
}

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "bitdissem — reproduction of 'On the Limits of Information Spread by Memory-less Agents'\n\
     \n\
     usage:\n\
     \x20 bitdissem list\n\
     \x20 bitdissem run <experiment-id|all> [--scale smoke|standard|full] [--seed N]\n\
     \x20\x20\x20\x20 [--threads T] [--engine batched|per-replica|wide] [--env SPEC] [--csv]\n\
     \x20\x20\x20\x20 [--trace-out PATH] [--trace-every N] [--metrics] [--progress]\n\
     \x20\x20\x20\x20 [--checkpoint-dir DIR] [--resume] [--telemetry-prom F] [--telemetry-out F]\n\
     \x20\x20\x20\x20 [--telemetry-socket S] [--telemetry-interval-ms N]\n\
     \x20 bitdissem analyze <protocol> [--ell L] [--n N]\n\
     \x20 bitdissem simulate <protocol> [--ell L] [--n N] [--seed S] [--budget B] [--sequential]\n\
     \x20 bitdissem exact <protocol> [--ell L] [--n N]\n\
     \x20 bitdissem markov [--grid voter:1,minority:3] [--ns 1024,8192] [--eps E] [--t-max T]\n\
     \x20\x20\x20\x20 [--verify-n V] [--label L] [--out DIR]\n\
     \x20 bitdissem bench [--scale smoke|standard|full] [--seed N] [--label L] [--out DIR]\n\
     \x20\x20\x20\x20 [--max-workers W] [--compare BASELINE.json] [--check-only] [--metrics]\n\
     \x20 bitdissem trace <run.jsonl|run.bct>\n\
     \x20 bitdissem trace convert <in> <out>\n\
     \x20 bitdissem conform [--scale smoke|standard|full] [--seed N] [--label L] [--out DIR]\n\
     \x20\x20\x20\x20 [--skip-faults] [--env SPEC]\n\
     \x20 bitdissem watch (--socket PATH [--snapshots N] | --prom FILE [--reconcile M.jsonl])\n\
     \n\
     conformance (conform):\n\
     \x20 drives every simulator backend (agent, aggregate, sequential, partial, dual) from\n\
     \x20 identical grids and KS-gates their law equivalences against a 1e-9 false-alarm\n\
     \x20 budget, then injects checkpoint I/O faults (torn lines, short writes, transient\n\
     \x20 errors, worker kill) and verifies bit-identical resume. Writes CONFORM_<label>.json\n\
     \x20 to --out (default: current directory); exit status 1 on any failed check.\n\
     \x20 --skip-faults      run only the differential matrix (no scratch files)\n\
     \x20 --env SPEC         replace the preset env section's schedules with SPEC: every\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 parallel backend is KS-gated under that exact perturbation\n\
     \n\
     environment schedules (run, conform):\n\
     \x20 --env SPEC         inject perturbations between rounds; comma-separated clauses:\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 flip@T / flip@every:P         source flips its opinion\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 noise:ETA                     per-round agent re-randomization\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 reset:k=K@T|every:P|adaptive[:TH]  adversarial reset of k agents\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 e.g. --env flip@500  --env noise:0.01  --env reset:k=100@adaptive\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 for run: recorded in manifests; perturbed batches checkpoint\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 under their own batch kind, so --resume never splices static\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 results into a perturbed sweep\n\
     \n\
     exact large-n analytics (markov):\n\
     \x20 builds the ε-truncated sparse aggregate chain for every (protocol, n) grid point\n\
     \x20 and computes exact analytics that the dense solver cannot reach: expected hitting\n\
     \x20 times via banded LU, extreme-start mixing rounds, the survival curve of the\n\
     \x20 consensus time with exact median/p90, and (for n ≤ 2048) the spectral gap.\n\
     \x20 Writes a schema-versioned MARKOV_<label>.json to --out.\n\
     \x20 --grid P:L,P:L     protocols with sample sizes, e.g. voter:1,minority:3\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 (default voter:1; bare names mean ell = 1)\n\
     \x20 --ns N1,N2         population sizes (default 1024,8192; n = 1e5 stays under CI time)\n\
     \x20 --eps E            relative row-truncation cutoff in (0,1) (default 1e-12)\n\
     \x20 --t-max T          survival-curve horizon in rounds (default min(4n, 20000); 0 skips)\n\
     \x20 --mix-max M        mixing-round cap (default 10000; 0 skips — slow-mixing chains\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 pay the full cap before reporting 'not mixed')\n\
     \x20 --verify-n V       cross-check sparse rows against the dense chain at n = V before\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 reporting (default 64, range [2,512]; 0 skips). exit status 1\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 if any row disagrees beyond the tracked tail bound\n\
     \n\
     performance (bench):\n\
     \x20 --label L          name the output record BENCH_<L>.json (default: the scale name)\n\
     \x20 --out DIR          directory for the record (default: current directory)\n\
     \x20 --max-workers W    ceiling of the pool-scaling curve (default: the pool's\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 effective parallelism, same resolver as Pool::global)\n\
     \x20 --compare B.json   compare against a baseline record; a benchmark regresses when its\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 median throughput drops >25% and a KS test confirms the shift\n\
     \x20 --check-only       report regressions without failing the exit status\n\
     \n\
     trace analytics (trace):\n\
     \x20 exit status 1 when a recorded trajectory violates the paper's Prop-4 jump\n\
     \x20 bound or Prop-5 drift band; requires a trace recorded with --trace-out.\n\
     \x20 The input format (JSONL or binary columnar) is detected from the file's\n\
     \x20 leading bytes; 'trace convert' rewrites a trace in the other format\n\
     \n\
     observability (run):\n\
     \x20 --trace-out PATH   record a trace (rounds, replications, manifest)\n\
     \x20 --trace-format F   trace encoding: 'jsonl' (one JSON event per line, default,\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 debuggable) or 'columnar' (binary columns, for large runs)\n\
     \x20 --trace-every N    thin per-round events to every N-th round (default 1)\n\
     \x20 --metrics          print counters and per-phase timings to stderr\n\
     \x20 --progress         live replication meter on stderr\n\
     \x20 --checkpoint-dir D persist per-replication results to D/checkpoint.jsonl and\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 run manifests to D/manifests.jsonl\n\
     \x20 --engine E         replication engine: 'batched' (lock-step fast path, default),\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 'per-replica' (reference; outcomes bit-identical to batched),\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 or 'wide' (counter-rng lanes; KS-gated vs the reference)\n\
     \x20 --resume           skip replications already in the checkpoint log\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 (requires --checkpoint-dir; results stay bit-identical)\n\
     \n\
     live telemetry (run; any flag implies --metrics collection):\n\
     \x20 --telemetry-prom F      rewrite a Prometheus text exposition atomically on every\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 snapshot (scrape F, or check it with 'watch --prom F')\n\
     \x20 --telemetry-out F       append snapshots to a binary columnar trace ('bitdissem\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 trace F' analyzes it like any other trace)\n\
     \x20 --telemetry-socket S    publish snapshots as JSON lines on a unix socket\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 ('bitdissem watch --socket S' is the live client)\n\
     \x20 --telemetry-interval-ms N  snapshot interval (default 250)\n\
     \n\
     live view (watch):\n\
     \x20 --socket PATH      stream snapshots from a run's --telemetry-socket; redraws\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 rates, ETA, span/latency quantiles, steal ratio live\n\
     \x20 --snapshots N      stop after N snapshots (default: until the run ends)\n\
     \x20 --prom FILE        parse a --telemetry-prom exposition and print its counters\n\
     \x20 --reconcile M      with --prom: check exposition totals equal the summed\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 per-experiment counter deltas in a manifests.jsonl ledger;\n\
     \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 exit status 1 on any mismatch\n\
     \n\
     protocols: voter, minority, majority, two-choices, lazy-voter, power-voter, anti-voter, stay\n"
        .to_string()
}

fn build_protocol(args: &Args) -> Result<BoxedProtocol, String> {
    let name = args.positional.first().ok_or_else(|| "missing protocol name".to_string())?;
    let ell: usize = args.get_parsed("ell", 3)?;
    match dynamics::by_name(name, ell) {
        Some(Ok(p)) => Ok(p),
        Some(Err(e)) => Err(format!("invalid parameters for '{name}': {e}")),
        None => Err(format!("unknown protocol '{name}'")),
    }
}

/// Full result of one command: report text for stdout, diagnostics
/// (metrics, progress residue) for stderr, and the exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Report text, destined for stdout.
    pub stdout: String,
    /// Diagnostics (metrics summaries), destined for stderr.
    pub stderr: String,
    /// Exit status.
    pub status: Status,
}

impl CommandOutput {
    fn ok(stdout: String, status: Status) -> Self {
        CommandOutput { stdout, stderr: String::new(), status }
    }
}

/// Runs a parsed command and returns `(output, status)`, with any stderr
/// diagnostics appended to the output text. Prefer [`dispatch_full`] when
/// the two streams must stay separate (as the binary does).
#[must_use]
pub fn dispatch(args: &Args) -> (String, Status) {
    let out = dispatch_full(args);
    (out.stdout + &out.stderr, out.status)
}

/// Runs a parsed command keeping stdout and stderr separate.
#[must_use]
pub fn dispatch_full(args: &Args) -> CommandOutput {
    match args.command.as_deref() {
        None | Some("help") => CommandOutput::ok(usage(), Status::Ok),
        Some("list") => cmd_list(),
        Some("run") => cmd_run(args),
        Some("analyze") => cmd_analyze(args),
        Some("simulate") => cmd_simulate(args),
        Some("exact") => cmd_exact(args),
        Some("markov") => cmd_markov(args),
        Some("bench") => cmd_bench(args),
        Some("trace") => cmd_trace(args),
        Some("conform") => cmd_conform(args),
        Some("watch") => cmd_watch(args),
        Some(other) => CommandOutput::ok(
            format!("unknown command '{other}'\n\n{}", usage()),
            Status::UsageError,
        ),
    }
}

fn cmd_list() -> CommandOutput {
    let mut out = String::from("registered experiments:\n");
    for e in registry::all() {
        let _ = writeln!(out, "  {:<4} {}", e.id, e.description);
    }
    CommandOutput::ok(out, Status::Ok)
}

fn usage_error(msg: impl Into<String>) -> CommandOutput {
    CommandOutput::ok(msg.into(), Status::UsageError)
}

fn build_obs(args: &Args) -> Result<Obs, String> {
    let mut obs = Obs::none();
    let format = match args.get("trace-format") {
        None | Some("jsonl") => TraceFormat::Jsonl,
        Some("columnar") => TraceFormat::Columnar,
        Some(other) => {
            return Err(format!("unknown --trace-format '{other}' (expected jsonl or columnar)"))
        }
    };
    if let Some(path) = args.get("trace-out") {
        if path.is_empty() {
            return Err("--trace-out needs a file path".to_string());
        }
        let sink: Arc<dyn EventSink> = match format {
            TraceFormat::Jsonl => Arc::new(
                JsonlSink::create(path)
                    .map_err(|e| format!("cannot create trace file '{path}': {e}"))?,
            ),
            TraceFormat::Columnar => Arc::new(
                ColumnarSink::create(path)
                    .map_err(|e| format!("cannot create trace file '{path}': {e}"))?,
            ),
        };
        obs = obs.with_sink(sink);
    } else if args.get("trace-format").is_some() {
        return Err("--trace-format requires --trace-out".to_string());
    }
    // Telemetry exporters read the shared metric cells, so any
    // --telemetry-* flag implies collection even without --metrics.
    if args.flag("metrics") || wants_telemetry(args) {
        obs = obs.with_metrics();
    }
    if args.flag("progress") {
        obs = obs.with_progress(Arc::new(Progress::new("replications", 0)));
    }
    if let Some(dir) = args.get("checkpoint-dir") {
        if dir.is_empty() {
            return Err("--checkpoint-dir needs a directory path".to_string());
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create checkpoint directory '{dir}': {e}"))?;
        let path = std::path::Path::new(dir).join("checkpoint.jsonl");
        // A fresh run truncates the log (stale entries from a different
        // invocation must not be replayed); --resume reopens it.
        let log = if args.flag("resume") {
            CheckpointLog::open(&path)
        } else {
            CheckpointLog::create(&path)
        }
        .map_err(|e| format!("cannot open checkpoint log '{}': {e}", path.display()))?;
        obs = obs.with_checkpoint(Arc::new(log));
    } else if args.flag("resume") {
        return Err("--resume requires --checkpoint-dir".to_string());
    }
    let stride: u64 = args.get_parsed("trace-every", 1)?;
    Ok(obs.with_round_stride(stride))
}

/// Whether any telemetry exporter flag is present.
fn wants_telemetry(args: &Args) -> bool {
    ["telemetry-prom", "telemetry-out", "telemetry-socket"].iter().any(|k| args.get(k).is_some())
}

/// Builds the exporter stack from the `--telemetry-*` flags and starts
/// the snapshot thread. Returns `None` when no exporter flag is present,
/// so plain runs never pay for a snapshot thread.
fn start_cli_telemetry(
    args: &Args,
    obs: &Obs,
) -> Result<Option<bitdissem_obs::TelemetryHandle>, String> {
    use bitdissem_obs::telemetry::{ColumnarTelemetryExporter, PrometheusExporter};
    let mut exporters: Vec<Box<dyn bitdissem_obs::TelemetryExporter>> = Vec::new();
    if let Some(path) = args.get("telemetry-prom") {
        if path.is_empty() {
            return Err("--telemetry-prom needs a file path".to_string());
        }
        exporters.push(Box::new(PrometheusExporter::new(std::path::Path::new(path))));
    }
    if let Some(path) = args.get("telemetry-out") {
        if path.is_empty() {
            return Err("--telemetry-out needs a file path".to_string());
        }
        let exporter = ColumnarTelemetryExporter::create(std::path::Path::new(path))
            .map_err(|e| format!("cannot create telemetry trace '{path}': {e}"))?;
        exporters.push(Box::new(exporter));
    }
    if let Some(path) = args.get("telemetry-socket") {
        if path.is_empty() {
            return Err("--telemetry-socket needs a socket path".to_string());
        }
        #[cfg(unix)]
        {
            let publisher =
                bitdissem_obs::telemetry::SocketPublisher::bind(std::path::Path::new(path))
                    .map_err(|e| format!("cannot bind telemetry socket '{path}': {e}"))?;
            exporters.push(Box::new(publisher));
        }
        #[cfg(not(unix))]
        return Err("--telemetry-socket requires a unix platform".to_string());
    }
    if exporters.is_empty() {
        if args.get("telemetry-interval-ms").is_some() {
            return Err("--telemetry-interval-ms requires a telemetry exporter flag".to_string());
        }
        return Ok(None);
    }
    let interval_ms: u64 = args.get_parsed("telemetry-interval-ms", 250)?;
    Ok(Some(bitdissem_obs::start_telemetry(
        Arc::clone(obs.metrics()),
        obs.progress().cloned(),
        std::time::Duration::from_millis(interval_ms),
        exporters,
    )))
}

/// Appends each run's manifest to `<dir>/manifests.jsonl`, giving a
/// checkpointed sweep a durable provenance record alongside its results.
/// The append is committed atomically (write-to-temp + rename) so a crash
/// can never tear the ledger; manifests are low-frequency, so the
/// read-rewrite cost is irrelevant.
fn append_manifest(dir: &str, manifest: &bitdissem_obs::RunManifest) {
    let path = std::path::Path::new(dir).join("manifests.jsonl");
    let _ = bitdissem_obs::durable::atomic_append_line(&path, &manifest.to_json());
}

/// Parses the `--env` perturbation-schedule flag shared by `run` and
/// `conform`.
fn parse_env_flag(args: &Args) -> Result<Option<bitdissem_sim::EnvSchedule>, String> {
    match args.get("env") {
        None => Ok(None),
        Some(spec) => spec
            .parse()
            .map(Some)
            .map_err(|e| format!("{e} (grammar: flip@T, flip@every:P, noise:ETA, reset:k=K@T|every:P|adaptive[:TH], comma-separated)")),
    }
}

fn cmd_run(args: &Args) -> CommandOutput {
    let id = match args.positional.first() {
        Some(id) => id.clone(),
        None => return usage_error("missing experiment id\n"),
    };
    let scale = match args.get("scale").map(Scale::from_str).transpose() {
        Ok(s) => s.unwrap_or(Scale::Standard),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let seed = match args.get_parsed("seed", 2024u64) {
        Ok(s) => s,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let threads = match args.get_parsed("threads", 0usize) {
        Ok(0) => None,
        Ok(t) => Some(t),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let engine = match args.get("engine").map(ReplicationEngine::from_str).transpose() {
        Ok(e) => e.unwrap_or_default(),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let env = match parse_env_flag(args) {
        Ok(env) => env,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let mut cfg = RunConfig { scale, seed, threads, engine, env: None };
    if let Some(env) = env {
        cfg = cfg.with_env(env);
    }
    let obs = match build_obs(args) {
        Ok(obs) => obs,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let telemetry = match start_cli_telemetry(args, &obs) {
        Ok(t) => t,
        Err(e) => return usage_error(format!("{e}\n")),
    };

    let ids: Vec<String> = if id == "all" {
        registry::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        vec![id]
    };
    let mut out = String::new();
    let mut stderr = String::new();
    let mut all_pass = true;
    for id in ids {
        match registry::run_observed(&id, &cfg, &obs) {
            Some(report) => {
                if args.flag("csv") {
                    for (caption, table) in &report.tables {
                        let _ = writeln!(out, "# {}: {caption}", report.id);
                        out.push_str(&table.to_csv());
                    }
                } else {
                    out.push_str(&report.render());
                    out.push('\n');
                }
                if let Some(manifest) = &report.manifest {
                    if args.flag("metrics") {
                        let _ = writeln!(stderr, "manifest: {}", manifest.to_json());
                    }
                    if let Some(dir) = args.get("checkpoint-dir") {
                        append_manifest(dir, manifest);
                    }
                }
                all_pass &= report.pass;
            }
            None => return usage_error(format!("unknown experiment '{id}' (try 'list')\n")),
        }
    }
    if let Some(progress) = obs.progress() {
        progress.finish();
    }
    // Stop after every experiment finished: the final snapshot then
    // carries the run's complete totals, which reconcile exactly with the
    // summed per-experiment counter deltas in manifests.jsonl.
    if let Some(handle) = telemetry {
        handle.stop();
    }
    if args.flag("metrics") {
        stderr.push_str(&obs.metrics().render());
    }
    let status = if all_pass { Status::Ok } else { Status::CheckFailed };
    CommandOutput { stdout: out, stderr, status }
}

/// Whether the first line of the file at `path` decodes as a trace
/// [`bitdissem_obs::Event`] — used to improve the error when a JSONL
/// trace is handed to `bench --compare`.
fn looks_like_jsonl_trace(path: &str) -> bool {
    use std::io::BufRead as _;
    let Ok(file) = std::fs::File::open(path) else { return false };
    let mut line = String::new();
    if std::io::BufReader::new(file).read_line(&mut line).is_err() {
        return false;
    }
    bitdissem_obs::Event::from_json(line.trim()).is_ok()
}

/// Relative median drop below which a benchmark is considered regressed
/// (when the KS test also confirms the distributions differ).
const BENCH_REGRESSION_DROP: f64 = -0.25;

/// KS significance for the bench regression verdict.
const BENCH_REGRESSION_ALPHA: f64 = 0.01;

fn cmd_bench(args: &Args) -> CommandOutput {
    let scale = match args.get("scale").map(Scale::from_str).transpose() {
        Ok(s) => s.unwrap_or(Scale::Smoke),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let seed = match args.get_parsed("seed", 42u64) {
        Ok(s) => s,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let max_workers = match args.get_parsed("max-workers", 0usize) {
        Ok(0) => bitdissem_pool::effective_parallelism(),
        Ok(w) => w,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let label = args.get("label").unwrap_or(scale.name()).to_string();
    let out_dir = args.get("out").unwrap_or(".").to_string();
    let obs = match build_obs(args) {
        Ok(obs) => obs,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    // Load the baseline before spending minutes benchmarking: a bad
    // --compare path must fail fast, before anything is written.
    let baseline = match args.get("compare") {
        None => None,
        Some(p) => {
            // Catch a trace handed to --compare up front: a clear
            // message beats a JSON-schema parse cascade.
            if let Ok(Some(TraceFormat::Columnar)) = detect_format(std::path::Path::new(p)) {
                return usage_error(format!(
                    "cannot load baseline: '{p}' is a columnar trace, not a BENCH record \
                     (run 'bitdissem trace' on it instead)\n"
                ));
            }
            match BenchRecord::load(std::path::Path::new(p)) {
                Ok(b) => Some((p, b)),
                Err(e) => {
                    let hint = if looks_like_jsonl_trace(p) {
                        format!(
                            " ('{p}' looks like a JSONL trace — run 'bitdissem trace' on it \
                             instead)"
                        )
                    } else {
                        String::new()
                    };
                    return usage_error(format!("cannot load baseline: {e}{hint}\n"));
                }
            }
        }
    };

    let telemetry = match start_cli_telemetry(args, &obs) {
        Ok(t) => t,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let ctx = BenchCtx::new(scale, seed, max_workers);
    let results = bench_run_all(&ctx, &obs);
    if let Some(handle) = telemetry {
        handle.stop();
    }

    let mut record = BenchRecord::new(&label, scale.name(), seed, max_workers as u64);
    for r in &results {
        record.push(&r.id, r.unit, r.samples.clone());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchmarks at scale {} (seed {seed}, up to {max_workers} workers):",
        scale.name()
    );
    for e in &record.entries {
        let _ = writeln!(
            out,
            "  {:<20} median {:>14} {} ({} samples)",
            e.id,
            fmt_num(e.median()),
            e.unit,
            e.samples.len()
        );
    }
    let path = match record.save(std::path::Path::new(&out_dir)) {
        Ok(p) => p,
        Err(e) => return usage_error(format!("cannot write bench record in '{out_dir}': {e}\n")),
    };
    let _ = writeln!(out, "wrote {} (schema v{})", path.display(), record.schema_version);

    let mut status = Status::Ok;
    if let Some((baseline_path, baseline)) = baseline {
        let _ = writeln!(
            out,
            "\ncompared against {baseline_path} (label '{}', scale {}):",
            baseline.label, baseline.scale
        );
        let mut regressions = 0usize;
        for e in &record.entries {
            let Some(base) = baseline.entry(&e.id) else {
                let _ = writeln!(out, "  {:<20} no baseline entry, skipped", e.id);
                continue;
            };
            let Some(shift) =
                bitdissem_stats::median_shift(&base.samples, &e.samples, BENCH_REGRESSION_ALPHA)
            else {
                let _ = writeln!(out, "  {:<20} not comparable (degenerate samples)", e.id);
                continue;
            };
            // Throughput units: a regression is a *confirmed* median drop.
            let regressed = shift.rel_change < BENCH_REGRESSION_DROP && shift.distribution_shift;
            regressions += usize::from(regressed);
            let _ = writeln!(
                out,
                "  {:<20} {:>+7.1}% vs baseline median {:>14} {}",
                e.id,
                shift.rel_change * 100.0,
                fmt_num(shift.baseline_median),
                if regressed { " REGRESSION" } else { "" }
            );
        }
        if regressions > 0 {
            let _ = writeln!(out, "verdict: {regressions} benchmark(s) regressed");
            if !args.flag("check-only") {
                status = Status::CheckFailed;
            }
        } else {
            let _ = writeln!(out, "verdict: no regressions");
        }
    }

    if let Some(progress) = obs.progress() {
        progress.finish();
    }
    let mut stderr = String::new();
    if args.flag("metrics") {
        stderr.push_str(&obs.metrics().render());
    }
    CommandOutput { stdout: out, stderr, status }
}

fn cmd_conform(args: &Args) -> CommandOutput {
    let scale = match args.get("scale").map(ConformScale::from_str).transpose() {
        Ok(s) => s.unwrap_or(ConformScale::Smoke),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let seed = match args.get_parsed("seed", 42u64) {
        Ok(s) => s,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let label = args.get("label").unwrap_or(scale.name()).to_string();
    let out_dir = args.get("out").unwrap_or(".").to_string();

    let mut cfg = ConformConfig::for_scale(scale);
    match parse_env_flag(args) {
        // An explicit schedule replaces the preset env section: the whole
        // matrix then gates every parallel backend under exactly that
        // perturbation (canonicalized through its fingerprint).
        Ok(Some(env)) => cfg.env_specs = vec![env.fingerprint()],
        Ok(None) => {}
        Err(e) => return usage_error(format!("{e}\n")),
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "running conformance matrix at scale {} (seed {seed}): {} KS checks at per-test alpha {:.2e} (env: {})",
        scale.name(),
        cfg.num_checks(),
        cfg.per_test_alpha(),
        cfg.env_specs.join(" "),
    );
    let checks = run_differential(&cfg, seed);

    let faults = if args.flag("skip-faults") {
        Vec::new()
    } else {
        let fault_dir = std::path::Path::new(&out_dir).join("conform-faults");
        if let Err(e) = std::fs::create_dir_all(&fault_dir) {
            return usage_error(format!(
                "cannot create fault-scenario directory '{}': {e}\n",
                fault_dir.display()
            ));
        }
        run_fault_scenarios(&fault_dir, seed)
    };

    let report = ConformReport {
        schema_version: CONFORM_SCHEMA_VERSION,
        label,
        scale: scale.name().to_string(),
        seed,
        alpha_budget: cfg.alpha_budget,
        checks,
        faults,
    };
    out.push_str(&report.render());
    let path = match report.save(std::path::Path::new(&out_dir)) {
        Ok(p) => p,
        Err(e) => {
            return usage_error(format!("cannot write conformance report in '{out_dir}': {e}\n"))
        }
    };
    let _ = writeln!(out, "wrote {} (schema v{})", path.display(), report.schema_version);
    let status = if report.pass() { Status::Ok } else { Status::CheckFailed };
    CommandOutput::ok(out, status)
}

/// Sniffs the trace format at `path`, mapping both I/O failures and
/// unrecognized contents to a user-facing error string.
fn sniff_trace(path: &str) -> Result<TraceFormat, String> {
    match detect_format(std::path::Path::new(path)) {
        Ok(Some(f)) => Ok(f),
        Ok(None) => Err(format!(
            "cannot read trace '{path}': not a trace file \
             (expected the columnar BDCT magic or JSONL events)\n"
        )),
        Err(e) => Err(format!("cannot read trace '{path}': {e}\n")),
    }
}

fn cmd_trace(args: &Args) -> CommandOutput {
    if args.positional.first().map(String::as_str) == Some("convert") {
        return cmd_trace_convert(args);
    }
    let Some(path) = args.positional.first() else {
        return usage_error(
            "missing trace path (a JSONL or columnar file recorded with --trace-out)\n",
        );
    };
    let format = match sniff_trace(path) {
        Ok(f) => f,
        Err(e) => return usage_error(e),
    };
    let mut acc = TraceAccumulator::new();
    let (skipped, torn_tail) = match format {
        TraceFormat::Jsonl => {
            // One buffered pass, events pushed straight into the
            // accumulator — O(line) memory.
            match stream_trace(std::path::Path::new(path), |ev| acc.push(&ev)) {
                Ok(stats) => (stats.skipped, stats.torn_tail),
                Err(e) => return usage_error(format!("cannot read trace '{path}': {e}\n")),
            }
        }
        TraceFormat::Columnar => match ColumnarReader::open(std::path::Path::new(path)) {
            Ok(reader) => {
                // Zero-copy pass: typed column views feed the
                // accumulator without materializing events.
                for block in reader.blocks() {
                    acc.ingest_block(&block);
                }
                (0, reader.torn_tail())
            }
            Err(e) => return usage_error(format!("cannot read trace '{path}': {e}\n")),
        },
    };
    let mut out = String::new();
    if torn_tail {
        let _ = writeln!(
            out,
            "note: trace ends in a torn {} (the writer was cut off mid-record); \
             analytics cover the complete prefix",
            match format {
                TraceFormat::Jsonl => "line",
                TraceFormat::Columnar => "block",
            }
        );
    }
    let analysis = acc.finish(skipped);
    out.push_str(&analysis.render());
    let status = if analysis.has_violations() { Status::CheckFailed } else { Status::Ok };
    CommandOutput::ok(out, status)
}

/// `trace convert <in> <out>`: rewrites a trace in the other format
/// (JSONL → columnar, columnar → JSONL), preserving event order.
fn cmd_trace_convert(args: &Args) -> CommandOutput {
    let (Some(input), Some(output)) = (args.positional.get(1), args.positional.get(2)) else {
        return usage_error("usage: bitdissem trace convert <in> <out>\n");
    };
    let format = match sniff_trace(input) {
        Ok(f) => f,
        Err(e) => return usage_error(e),
    };
    let target = match format {
        TraceFormat::Jsonl => TraceFormat::Columnar,
        TraceFormat::Columnar => TraceFormat::Jsonl,
    };
    let sink: Arc<dyn EventSink> = match target {
        TraceFormat::Jsonl => match JsonlSink::create(output) {
            Ok(s) => Arc::new(s),
            Err(e) => return usage_error(format!("cannot create trace file '{output}': {e}\n")),
        },
        TraceFormat::Columnar => match ColumnarSink::create(output) {
            Ok(s) => Arc::new(s),
            Err(e) => return usage_error(format!("cannot create trace file '{output}': {e}\n")),
        },
    };
    let mut events = 0usize;
    let (skipped, torn_tail) = match format {
        TraceFormat::Jsonl => {
            match stream_trace(std::path::Path::new(input), |ev| {
                events += 1;
                sink.emit(&ev);
            }) {
                Ok(stats) => (stats.skipped, stats.torn_tail),
                Err(e) => return usage_error(format!("cannot read trace '{input}': {e}\n")),
            }
        }
        TraceFormat::Columnar => match ColumnarReader::open(std::path::Path::new(input)) {
            Ok(reader) => {
                for ev in reader.events() {
                    events += 1;
                    sink.emit(&ev);
                }
                (0, reader.torn_tail())
            }
            Err(e) => return usage_error(format!("cannot read trace '{input}': {e}\n")),
        },
    };
    sink.flush();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "converted {events} events: {} ({}) -> {} ({})",
        input,
        format.name(),
        output,
        target.name()
    );
    if skipped > 0 {
        let _ = writeln!(out, "note: {skipped} undecodable lines skipped");
    }
    if torn_tail {
        let _ = writeln!(
            out,
            "note: input ends in a torn record; the conversion covers the complete prefix"
        );
    }
    CommandOutput::ok(out, Status::Ok)
}

fn cmd_analyze(args: &Args) -> CommandOutput {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let n = match args.get_parsed("n", 4096u64) {
        Ok(n) if n >= 8 => n,
        Ok(_) => return usage_error("--n must be at least 8\n".to_string()),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let mut out = String::new();
    let _ = writeln!(out, "protocol: {} at n = {n}", protocol.name());
    let f = match BiasPolynomial::build(&protocol, n) {
        Ok(f) => f,
        Err(e) => return usage_error(format!("cannot build bias polynomial: {e}\n")),
    };
    let _ = writeln!(out, "bias polynomial: F_n(p) = {}", f.as_polynomial());
    let rs = RootStructure::analyze(&f);
    if rs.is_identically_zero() {
        let _ = writeln!(out, "F_n is identically zero (voter-like, Lemma 11)");
    } else {
        let _ = writeln!(out, "roots in [0,1]: {:?}", rs.roots());
        for &(lo, hi, s) in rs.sign_intervals() {
            let _ = writeln!(
                out,
                "  F_n is {} on ({lo:.4}, {hi:.4})",
                if s > 0 { "positive" } else { "negative" }
            );
        }
    }
    let w = LowerBoundWitness::from_bias(&f);
    let _ = writeln!(out, "witness: {}", w.case());
    let (a1, a2, a3) = w.interval_constants();
    let _ = writeln!(out, "  (a1, a2, a3) = ({a1:.4}, {a2:.4}, {a3:.4})");
    let _ = writeln!(out, "  adversarial start: {}", w.start());
    let _ = writeln!(out, "  slow threshold: X = {}", w.threshold());
    let _ = writeln!(
        out,
        "  Theorem 1 predicts >= n^0.9 = {:.0} rounds to cross",
        w.predicted_min_rounds(0.1)
    );
    CommandOutput::ok(out, Status::Ok)
}

fn cmd_simulate(args: &Args) -> CommandOutput {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let n = match args.get_parsed("n", 4096u64) {
        Ok(n) if n >= 8 => n,
        Ok(_) => return usage_error("--n must be at least 8\n".to_string()),
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let seed = match args.get_parsed("seed", 1u64) {
        Ok(s) => s,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let budget = match args.get_parsed("budget", 100 * n) {
        Ok(b) => b,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let witness = match LowerBoundWitness::construct(&protocol, n) {
        Ok(w) => w,
        Err(e) => return usage_error(format!("cannot build witness: {e}\n")),
    };
    let mut rng = rng_from(seed);
    let mut trajectory = Trajectory::new(24);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulating {} from {} ({}, budget {budget} rounds, seed {seed})",
        protocol.name(),
        witness.start(),
        if args.flag("sequential") { "sequential" } else { "parallel" },
    );

    let outcome = if args.flag("sequential") {
        let mut sim = SequentialSim::new(&protocol, witness.start()).expect("validated above");
        run_with_recorder(&mut sim, &mut rng, budget, &mut trajectory)
    } else {
        let mut sim = AggregateSim::new(&protocol, witness.start()).expect("validated above");
        run_with_recorder(&mut sim, &mut rng, budget, &mut trajectory)
    };

    let _ = writeln!(out, "trajectory (round, X/n):");
    for (round, x) in trajectory.iter() {
        let _ = writeln!(out, "  {round:>10}  {}", fmt_num(x as f64 / n as f64));
    }
    match outcome {
        Outcome::Converged { rounds } => {
            let _ = writeln!(out, "converged after {rounds} parallel rounds");
        }
        Outcome::TimedOut { rounds } => {
            let _ = writeln!(out, "not converged within {rounds} rounds (lower bound at work)");
        }
    }
    CommandOutput::ok(out, Status::Ok)
}

fn run_with_recorder<S: Simulator>(
    sim: &mut S,
    rng: &mut bitdissem_sim::rng::SimRng,
    budget: u64,
    trajectory: &mut Trajectory,
) -> Outcome {
    for t in 0..=budget {
        trajectory.record(sim.configuration().ones());
        if sim.configuration().is_correct_consensus() {
            return Outcome::Converged { rounds: t };
        }
        if t == budget {
            break;
        }
        sim.step_round(rng);
    }
    Outcome::TimedOut { rounds: budget }
}

fn cmd_exact(args: &Args) -> CommandOutput {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let n = match args.get_parsed("n", 64u64) {
        Ok(n) if (2..=512).contains(&n) => n,
        Ok(n) => {
            return usage_error(format!("--n must be in [2, 512] for the exact solver, got {n}\n"))
        }
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let mut out = String::new();
    for correct in bitdissem_core::Opinion::ALL {
        let chain = match AggregateChain::build(&protocol, n, correct) {
            Ok(c) => c,
            Err(e) => return usage_error(format!("cannot build chain: {e}\n")),
        };
        match expected_hitting_times(&chain) {
            Some(times) => {
                let (state, worst) = times.worst();
                let _ = writeln!(
                    out,
                    "z = {correct}: worst expected convergence {} rounds (from X = {state})",
                    fmt_num(worst)
                );
            }
            None => {
                let _ =
                    writeln!(out, "z = {correct}: correct consensus unreachable from some state");
            }
        }
    }
    CommandOutput::ok(out, Status::Ok)
}

// ---------------------------------------------------------------------------
// markov: exact sparse-chain analytics at large n
// ---------------------------------------------------------------------------

/// Schema version of the `MARKOV_<label>.json` analytics record.
pub const MARKOV_SCHEMA_VERSION: u64 = 1;

/// Largest `n` for which the CLI attempts the spectral gap: the shifted
/// power iteration needs `~1/gap` matvecs to converge, which is fine in the
/// thousands of states and hopeless at `n = 1e5`.
const MARKOV_GAP_MAX_N: u64 = 2048;

/// Mixing tolerance used by the `markov` subcommand (the standard `1/4`).
const MARKOV_MIX_EPSILON: f64 = 0.25;

/// Default cap on mixing rounds before declaring the chain unmixed at this
/// horizon (override with `--mix-max`; slow-mixing chains pay the full cap).
const MARKOV_MIX_MAX_ROUNDS: usize = 10_000;

/// Maximum number of survival-curve points embedded in the JSON record;
/// longer curves are thinned to a uniform stride.
const MARKOV_CURVE_POINTS: usize = 257;

fn elapsed_ms(start: std::time::Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn cmd_markov(args: &Args) -> CommandOutput {
    // --grid: comma-separated `protocol[:ell]` entries (bare name = ell 1).
    let grid_spec = args.get("grid").unwrap_or("voter:1").to_string();
    let mut grid: Vec<(String, usize, BoxedProtocol)> = Vec::new();
    for part in grid_spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, ell) = match part.split_once(':') {
            Some((name, ell_str)) => match ell_str.parse::<usize>() {
                Ok(l) => (name, l),
                Err(_) => {
                    return usage_error(format!(
                        "bad --grid entry '{part}': expected protocol[:ell]\n"
                    ))
                }
            },
            None => (part, 1),
        };
        match dynamics::by_name(name, ell) {
            Some(Ok(p)) => grid.push((name.to_string(), ell, p)),
            Some(Err(e)) => return usage_error(format!("invalid parameters for '{name}': {e}\n")),
            None => return usage_error(format!("unknown protocol '{name}' in --grid\n")),
        }
    }
    if grid.is_empty() {
        return usage_error("--grid must name at least one protocol\n");
    }
    let ns_spec = args.get("ns").unwrap_or("1024,8192").to_string();
    let mut ns: Vec<u64> = Vec::new();
    for part in ns_spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match part.parse::<u64>() {
            Ok(n) if n >= 2 => ns.push(n),
            _ => return usage_error(format!("bad --ns entry '{part}': need integers >= 2\n")),
        }
    }
    if ns.is_empty() {
        return usage_error("--ns must name at least one population size\n");
    }
    let eps = match args.get("eps") {
        Some(s) => match s.parse::<f64>() {
            Ok(e) if e > 0.0 && e < 1.0 => Some(e),
            _ => return usage_error("--eps must be a float in (0, 1)\n"),
        },
        None => None,
    };
    let t_max_flag: Option<usize> = match args.get("t-max") {
        Some(s) => match s.parse::<usize>() {
            Ok(t) => Some(t),
            Err(_) => return usage_error("--t-max must be a non-negative integer\n"),
        },
        None => None,
    };
    let mix_max = match args.get_parsed("mix-max", MARKOV_MIX_MAX_ROUNDS) {
        Ok(m) => m,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let verify_n = match args.get_parsed("verify-n", 64u64) {
        Ok(0) => 0,
        Ok(n) if (2..=512).contains(&n) => n,
        Ok(n) => {
            return usage_error(format!("--verify-n must be 0 (skip) or in [2, 512], got {n}\n"))
        }
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let label = args.get("label").unwrap_or("markov").to_string();
    let out_dir = std::path::PathBuf::from(args.get("out").unwrap_or("."));

    let correct = bitdissem_core::Opinion::One;
    let mut out = String::new();
    let mut status = Status::Ok;

    // Deterministic gate first: at --verify-n the sparse rows must agree
    // with the dense chain within the tracked truncation tail bound.
    let mut verify_json = Vec::new();
    if verify_n > 0 {
        for (name, ell, protocol) in &grid {
            let table = match protocol.to_table(verify_n) {
                Ok(t) => t,
                Err(e) => return usage_error(format!("cannot materialize {name}:{ell}: {e}\n")),
            };
            let check =
                sparse_dense_check(&format!("{name}(ell={ell})"), &table, verify_n, correct);
            let _ = writeln!(
                out,
                "verify {name}:{ell} n={verify_n}: sparse~dense worst violation {:.3e} — {}",
                check.statistic,
                if check.pass { "ok" } else { "FAIL" }
            );
            if !check.pass {
                status = Status::CheckFailed;
            }
            verify_json.push(Value::Obj(vec![
                ("name".to_string(), Value::Str(check.name.clone())),
                ("statistic".to_string(), Value::Num(check.statistic)),
                ("pass".to_string(), Value::Bool(check.pass)),
            ]));
        }
    }

    let mut points_json = Vec::new();
    for (name, ell, protocol) in &grid {
        for &n in &ns {
            let t_build = std::time::Instant::now();
            let built = match eps {
                Some(e) => SparseChain::build_with_eps(protocol.as_ref(), n, correct, e),
                None => SparseChain::build(protocol.as_ref(), n, correct),
            };
            let chain = match built {
                Ok(c) => c,
                Err(e) => {
                    return usage_error(format!(
                        "cannot build chain for {name}:{ell} at n = {n}: {e}\n"
                    ))
                }
            };
            let build_ms = elapsed_ms(t_build);
            let _ = writeln!(
                out,
                "{name}:{ell} n={n}: built {} states, nnz {}, band {}, tail {:.2e} ({:.0} ms)",
                chain.num_states(),
                chain.nnz(),
                chain.max_bandwidth(),
                chain.max_tail_bound(),
                build_ms
            );

            let t_hit = std::time::Instant::now();
            let hitting = expected_hitting_times_sparse(&chain);
            let hit_ms = elapsed_ms(t_hit);
            let hitting_json = match &hitting {
                Some(times) => {
                    let (worst_state, worst) = times.worst();
                    let from_wrong = times.from_state(chain.state_lo());
                    let _ = writeln!(
                        out,
                        "  hitting: worst {} rounds from X = {worst_state}, all-wrong {} \
                         ({:.0} ms)",
                        fmt_num(worst),
                        fmt_num(from_wrong),
                        hit_ms
                    );
                    Value::Obj(vec![
                        ("worst_state".to_string(), Value::Int(i128::from(worst_state))),
                        ("worst_rounds".to_string(), Value::Num(worst)),
                        ("all_wrong_rounds".to_string(), Value::Num(from_wrong)),
                        ("solve_ms".to_string(), Value::Num(hit_ms)),
                    ])
                }
                None => {
                    let _ = writeln!(out, "  hitting: consensus unreachable (singular system)");
                    Value::Null
                }
            };

            let mixing_json = if mix_max == 0 {
                Value::Null
            } else {
                let t_mix = std::time::Instant::now();
                let mixing = mixing_time_extremes_sparse(&chain, MARKOV_MIX_EPSILON, mix_max);
                let mix_ms = elapsed_ms(t_mix);
                match mixing {
                    Some(rounds) => {
                        let _ = writeln!(out, "  mixing(1/4): {rounds} rounds ({:.0} ms)", mix_ms);
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  mixing(1/4): not mixed within {mix_max} rounds ({:.0} ms)",
                            mix_ms
                        );
                    }
                }
                Value::Obj(vec![
                    ("epsilon".to_string(), Value::Num(MARKOV_MIX_EPSILON)),
                    ("rounds".to_string(), mixing.map_or(Value::Null, |r| Value::Int(r as i128))),
                    ("max_rounds".to_string(), Value::Int(mix_max as i128)),
                    ("ms".to_string(), Value::Num(mix_ms)),
                ])
            };

            let t_max = t_max_flag
                .unwrap_or_else(|| usize::try_from((4 * n).min(20_000)).expect("t_max fits"));
            let survival_json = if t_max == 0 {
                Value::Null
            } else {
                let t_surv = std::time::Instant::now();
                let curve = survival_curve_sparse(&chain, chain.state_lo(), t_max);
                let surv_ms = elapsed_ms(t_surv);
                let median = quantile_from_survival(&curve, 0.5);
                let p90 = quantile_from_survival(&curve, 0.9);
                let _ = writeln!(
                    out,
                    "  survival from all-wrong: median {}, p90 {} at t_max {t_max} ({:.0} ms)",
                    median.map_or("> t_max".to_string(), |t| t.to_string()),
                    p90.map_or("> t_max".to_string(), |t| t.to_string()),
                    surv_ms
                );
                let stride = curve.len().div_ceil(MARKOV_CURVE_POINTS).max(1);
                let mut ts = Vec::new();
                let mut ss = Vec::new();
                for (t, &s) in curve.iter().enumerate() {
                    if t % stride == 0 || t == curve.len() - 1 {
                        ts.push(Value::Int(t as i128));
                        ss.push(Value::Num(s));
                    }
                }
                Value::Obj(vec![
                    ("t_max".to_string(), Value::Int(t_max as i128)),
                    ("stride".to_string(), Value::Int(stride as i128)),
                    ("median".to_string(), median.map_or(Value::Null, |t| Value::Int(t as i128))),
                    ("p90".to_string(), p90.map_or(Value::Null, |t| Value::Int(t as i128))),
                    ("ms".to_string(), Value::Num(surv_ms)),
                    ("t".to_string(), Value::Arr(ts)),
                    ("s".to_string(), Value::Arr(ss)),
                ])
            };

            let gap_json = if n <= MARKOV_GAP_MAX_N {
                match spectral_gap(&chain) {
                    Some(gap) => {
                        let _ = writeln!(out, "  spectral gap: {gap:.6e}");
                        Value::Num(gap)
                    }
                    None => Value::Null,
                }
            } else {
                Value::Null
            };

            points_json.push(Value::Obj(vec![
                ("protocol".to_string(), Value::Str(name.clone())),
                ("ell".to_string(), Value::Int(*ell as i128)),
                ("n".to_string(), Value::Int(i128::from(n))),
                ("rel_eps".to_string(), Value::Num(chain.rel_eps())),
                ("num_states".to_string(), Value::Int(chain.num_states() as i128)),
                ("nnz".to_string(), Value::Int(chain.nnz() as i128)),
                ("max_bandwidth".to_string(), Value::Int(chain.max_bandwidth() as i128)),
                ("max_tail_bound".to_string(), Value::Num(chain.max_tail_bound())),
                ("build_ms".to_string(), Value::Num(build_ms)),
                ("hitting".to_string(), hitting_json),
                ("mixing".to_string(), mixing_json),
                ("survival".to_string(), survival_json),
                ("spectral_gap".to_string(), gap_json),
            ]));
        }
    }

    let record = Value::Obj(vec![
        ("schema_version".to_string(), Value::Int(i128::from(MARKOV_SCHEMA_VERSION))),
        ("label".to_string(), Value::Str(label.clone())),
        ("grid".to_string(), Value::Str(grid_spec)),
        ("ns".to_string(), Value::Arr(ns.iter().map(|&n| Value::Int(i128::from(n))).collect())),
        ("verify_n".to_string(), Value::Int(i128::from(verify_n))),
        ("pass".to_string(), Value::Bool(status == Status::Ok)),
        ("verification".to_string(), Value::Arr(verify_json)),
        ("points".to_string(), Value::Arr(points_json)),
    ]);
    let path = out_dir.join(format!("MARKOV_{label}.json"));
    let mut rendered = record.render();
    rendered.push('\n');
    if let Err(e) = atomic_replace(&path, rendered.as_bytes()) {
        let _ = writeln!(out, "cannot write {}: {e}", path.display());
        return CommandOutput::ok(out, Status::UsageError);
    }
    let _ = writeln!(out, "wrote {}", path.display());
    CommandOutput::ok(out, status)
}

// ---------------------------------------------------------------------------
// watch: live telemetry view and exposition reconciliation
// ---------------------------------------------------------------------------

/// Seconds rendered for humans: `42.0s`, `3m05s`, `2h14m`.
fn fmt_secs(s: f64) -> String {
    if !s.is_finite() || s < 0.0 {
        return "-".to_string();
    }
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// Nanoseconds rendered with an adaptive unit.
fn fmt_nanos(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders one telemetry snapshot as the multi-line live view.
#[allow(clippy::cast_precision_loss)]
fn render_watch(snap: &bitdissem_obs::TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bitdissem telemetry  snapshot v{}  elapsed {}",
        snap.version,
        fmt_secs(snap.elapsed_us as f64 / 1e6)
    );
    if let Some(p) = &snap.progress {
        if p.total > 0 {
            let pct = 100.0 * p.done as f64 / p.total as f64;
            let _ = writeln!(
                out,
                "progress   {}/{} ({pct:.1}%)  {:.1}/s  eta {}",
                p.done,
                p.total,
                p.rate_per_sec,
                fmt_secs(p.eta_secs)
            );
        } else {
            // Indeterminate total: no percentage or ETA to show.
            let _ = writeln!(out, "progress   {} done  {:.1}/s", p.done, p.rate_per_sec);
        }
    }
    let _ = writeln!(
        out,
        "pool       steal ratio {:.3}  checkpoint hit rate {:.3}",
        snap.steal_ratio(),
        snap.checkpoint_hit_rate()
    );
    let _ = writeln!(out, "counters:");
    for (name, v) in &snap.counters {
        let rate = snap.rates.iter().find(|(n, _)| n == name).map_or(0.0, |&(_, r)| r);
        let _ = writeln!(out, "  {name:<22} {:>14}  {:>12}/s", fmt_num(*v as f64), fmt_num(rate));
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<22} {v:>14}");
        }
    }
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "spans (p50 / p90 / p99):");
        for (path, q) in &snap.spans {
            // Indent by path depth so nested span paths read as a tree.
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{:indent$}{leaf}", "", indent = 2 + 2 * depth);
            let _ = writeln!(
                out,
                "{label:<24} {:>9} / {:>9} / {:>9}  (n={})",
                fmt_nanos(q.p50),
                fmt_nanos(q.p90),
                fmt_nanos(q.p99),
                q.count
            );
        }
    }
    out
}

fn cmd_watch(args: &Args) -> CommandOutput {
    match (args.get("socket"), args.get("prom")) {
        (Some(_), Some(_)) => usage_error("watch takes --socket or --prom, not both\n"),
        (Some(path), None) => watch_socket(args, path),
        (None, Some(path)) => watch_prom(args, path),
        (None, None) => usage_error("watch needs --socket PATH or --prom FILE\n"),
    }
}

/// Streams snapshots from a run's `--telemetry-socket`, redrawing the
/// live view on stderr (full-screen when stderr is a terminal, one block
/// per snapshot otherwise). The last snapshot is returned on stdout so
/// the command composes with pipes and tests.
#[cfg(unix)]
fn watch_socket(args: &Args, path: &str) -> CommandOutput {
    use std::io::{BufRead as _, IsTerminal as _, Write as _};
    let snapshots: u64 = match args.get_parsed("snapshots", 0u64) {
        Ok(n) => n,
        Err(e) => return usage_error(format!("{e}\n")),
    };
    let stream = match std::os::unix::net::UnixStream::connect(path) {
        Ok(s) => s,
        Err(e) => {
            return usage_error(format!("cannot connect to telemetry socket '{path}': {e}\n"))
        }
    };
    let live_tty = std::io::stderr().is_terminal();
    let mut seen = 0u64;
    let mut last = None;
    for line in std::io::BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        let Some(snap) = bitdissem_obs::TelemetrySnapshot::from_json(line.trim()) else {
            continue;
        };
        let view = render_watch(&snap);
        let mut err = std::io::stderr().lock();
        if live_tty {
            // Clear + home between frames so the view redraws in place.
            let _ = write!(err, "\x1b[2J\x1b[H{view}");
        } else {
            let _ = writeln!(err, "{view}");
        }
        let _ = err.flush();
        seen += 1;
        last = Some(snap);
        if snapshots > 0 && seen >= snapshots {
            break;
        }
    }
    match last {
        None => CommandOutput {
            stdout: String::new(),
            stderr: format!("no snapshots received from '{path}'\n"),
            status: Status::CheckFailed,
        },
        Some(snap) => CommandOutput::ok(
            format!("{}watched {seen} snapshot(s)\n", render_watch(&snap)),
            Status::Ok,
        ),
    }
}

#[cfg(not(unix))]
fn watch_socket(_args: &Args, _path: &str) -> CommandOutput {
    usage_error("watch --socket requires a unix platform\n")
}

/// Parses a `--telemetry-prom` exposition file, prints its counter
/// totals, and (with `--reconcile`) checks them against the summed
/// per-experiment counter deltas of a `manifests.jsonl` ledger.
fn watch_prom(args: &Args, path: &str) -> CommandOutput {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return usage_error(format!("cannot read exposition '{path}': {e}\n")),
    };
    let samples = match bitdissem_obs::telemetry::parse_prometheus(&text) {
        Ok(s) => s,
        Err(e) => {
            return CommandOutput {
                stdout: String::new(),
                stderr: format!("malformed exposition '{path}': {e}\n"),
                status: Status::CheckFailed,
            }
        }
    };
    let counters: Vec<(&str, f64)> = samples
        .iter()
        .filter_map(|s| {
            let name = s.name.strip_prefix("bitdissem_")?.strip_suffix("_total")?;
            Some((name, s.value))
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exposition '{path}': {} samples, {} counters",
        samples.len(),
        counters.len()
    );
    for (name, v) in &counters {
        let _ = writeln!(out, "  {name:<22} {:>14}", fmt_num(*v));
    }
    let Some(manifests_path) = args.get("reconcile") else {
        return CommandOutput::ok(out, Status::Ok);
    };
    let ledger = match std::fs::read_to_string(manifests_path) {
        Ok(t) => t,
        Err(e) => return usage_error(format!("cannot read manifests '{manifests_path}': {e}\n")),
    };
    let mut sums: Vec<(String, u64)> = Vec::new();
    let mut runs = 0usize;
    for line in ledger.lines().filter(|l| !l.trim().is_empty()) {
        let manifest = match bitdissem_obs::RunManifest::from_json(line) {
            Ok(m) => m,
            Err(e) => {
                return CommandOutput {
                    stdout: out,
                    stderr: format!("bad manifest line in '{manifests_path}': {e}\n"),
                    status: Status::CheckFailed,
                }
            }
        };
        runs += 1;
        for (name, v) in &manifest.counters {
            match sums.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += v,
                None => sums.push((name.clone(), *v)),
            }
        }
    }
    let _ = writeln!(out, "reconciling against {runs} manifest(s) from '{manifests_path}':");
    if sums.is_empty() {
        let _ = writeln!(out, "  no counter deltas recorded (run with a --telemetry-* flag)");
        return CommandOutput { stdout: out, stderr: String::new(), status: Status::CheckFailed };
    }
    let mut mismatches = 0usize;
    #[allow(clippy::cast_precision_loss)]
    for (name, expect) in &sums {
        let got = counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        let ok = got == Some(*expect as f64);
        mismatches += usize::from(!ok);
        let _ = writeln!(
            out,
            "  {name:<22} manifests {:>14}  exposition {:>14}  {}",
            fmt_num(*expect as f64),
            got.map_or_else(|| "missing".to_string(), fmt_num),
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    if mismatches == 0 {
        let _ = writeln!(out, "verdict: exposition reconciles with the manifest ledger");
        CommandOutput::ok(out, Status::Ok)
    } else {
        let _ = writeln!(out, "verdict: {mismatches} counter(s) disagree");
        CommandOutput { stdout: out, stderr: String::new(), status: Status::CheckFailed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(argv: &[&str]) -> (String, Status) {
        dispatch(&Args::parse(argv.iter().copied()))
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(run_cli(&[]).1, Status::Ok);
        assert_eq!(run_cli(&["help"]).1, Status::Ok);
        let (out, status) = run_cli(&["frobnicate"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn list_shows_registry() {
        let (out, status) = run_cli(&["list"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("e1"));
        assert!(out.contains("a3"));
    }

    #[test]
    fn analyze_minority() {
        let (out, status) = run_cli(&["analyze", "minority", "--ell", "3", "--n", "1024"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("case 1"), "{out}");
        assert!(out.contains("roots"));
    }

    #[test]
    fn analyze_voter_is_voter_like() {
        let (out, status) = run_cli(&["analyze", "voter", "--ell", "1"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("identically zero"), "{out}");
    }

    #[test]
    fn analyze_rejects_unknown_protocol() {
        let (out, status) = run_cli(&["analyze", "nonsense"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown protocol"));
    }

    #[test]
    fn simulate_voter_small() {
        let (out, status) =
            run_cli(&["simulate", "voter", "--ell", "1", "--n", "64", "--seed", "3"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("trajectory"));
        assert!(out.contains("converged"), "{out}");
    }

    #[test]
    fn simulate_sequential_small() {
        let (out, status) = run_cli(&[
            "simulate",
            "voter",
            "--ell",
            "1",
            "--n",
            "32",
            "--sequential",
            "--budget",
            "100000",
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("sequential"));
    }

    #[test]
    fn exact_solver_voter() {
        let (out, status) = run_cli(&["exact", "voter", "--ell", "1", "--n", "24"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("z = 0"));
        assert!(out.contains("z = 1"));
    }

    #[test]
    fn exact_solver_reports_unreachable_consensus() {
        let (out, status) = run_cli(&["exact", "stay", "--n", "16"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("unreachable"), "{out}");
    }

    #[test]
    fn exact_rejects_large_n() {
        let (_, status) = run_cli(&["exact", "voter", "--n", "100000"]);
        assert_eq!(status, Status::UsageError);
    }

    #[test]
    fn markov_writes_versioned_record_and_passes_verification() {
        let dir = std::env::temp_dir().join(format!("markov_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_dir = dir.to_str().unwrap();
        let (out, status) = run_cli(&[
            "markov",
            "--grid",
            "voter:1,minority:3",
            "--ns",
            "96,192",
            "--t-max",
            "600",
            "--verify-n",
            "32",
            "--label",
            "t",
            "--out",
            out_dir,
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("verify voter:1"), "{out}");
        assert!(out.contains("hitting: worst"), "{out}");
        assert!(out.contains("mixing(1/4)"), "{out}");
        assert!(out.contains("survival from all-wrong"), "{out}");
        assert!(out.contains("spectral gap"), "{out}");
        let raw = std::fs::read_to_string(dir.join("MARKOV_t.json")).unwrap();
        let v = bitdissem_obs::json::parse(&raw).unwrap();
        assert_eq!(v.get("schema_version").and_then(Value::as_u64), Some(MARKOV_SCHEMA_VERSION));
        assert_eq!(v.get("pass").and_then(Value::as_bool), Some(true));
        match v.get("points") {
            Some(Value::Arr(points)) => {
                assert_eq!(points.len(), 4, "2 protocols x 2 sizes");
                for p in points {
                    assert!(p.get("nnz").and_then(Value::as_u64).unwrap() > 0);
                    assert!(p.get("hitting").is_some());
                }
            }
            other => panic!("points missing: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn markov_reports_singular_chains_without_failing() {
        let dir = std::env::temp_dir().join(format!("markov_stay_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (out, status) = run_cli(&[
            "markov",
            "--grid",
            "stay",
            "--ns",
            "64",
            "--t-max",
            "0",
            "--verify-n",
            "0",
            "--label",
            "stay",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("unreachable"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn markov_rejects_bad_inputs() {
        assert_eq!(run_cli(&["markov", "--grid", "nonsense"]).1, Status::UsageError);
        assert_eq!(run_cli(&["markov", "--grid", "voter:x"]).1, Status::UsageError);
        assert_eq!(run_cli(&["markov", "--ns", "1"]).1, Status::UsageError);
        assert_eq!(run_cli(&["markov", "--ns", ""]).1, Status::UsageError);
        assert_eq!(run_cli(&["markov", "--eps", "2.0"]).1, Status::UsageError);
        assert_eq!(run_cli(&["markov", "--verify-n", "1000"]).1, Status::UsageError);
    }

    #[test]
    fn run_unknown_experiment() {
        let (out, status) = run_cli(&["run", "e99"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown experiment"));
    }

    #[test]
    fn run_e5_smoke_text_and_csv() {
        let (out, status) = run_cli(&["run", "e5", "--scale", "smoke"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("verdict"));
        let (csv, status) = run_cli(&["run", "e5", "--scale", "smoke", "--csv"]);
        assert_eq!(status, Status::Ok);
        assert!(csv.contains("protocol,"), "{csv}");
    }

    #[test]
    fn bad_option_values_are_usage_errors() {
        let (_, status) = run_cli(&["run", "e5", "--scale", "bogus"]);
        assert_eq!(status, Status::UsageError);
        let (_, status) = run_cli(&["simulate", "voter", "--n", "abc"]);
        assert_eq!(status, Status::UsageError);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 0);
        assert_eq!(Status::CheckFailed.code(), 1);
        assert_eq!(Status::UsageError.code(), 2);
    }

    #[test]
    fn run_without_obs_flags_is_byte_identical_and_silent_on_stderr() {
        let argv = ["run", "e5", "--scale", "smoke", "--seed", "8"];
        let a = dispatch_full(&Args::parse(argv));
        let b = dispatch_full(&Args::parse(argv));
        assert_eq!(a.status, Status::Ok, "{}", a.stdout);
        assert!(a.stderr.is_empty());
        assert_eq!(a.stdout, b.stdout, "same seed, no flags: byte-identical output");
    }

    #[test]
    fn run_metrics_go_to_stderr() {
        let out = dispatch_full(&Args::parse(["run", "e2", "--scale", "smoke", "--metrics"]));
        assert_eq!(out.status, Status::Ok, "{}", out.stdout);
        assert!(out.stderr.contains("rounds_simulated"), "{}", out.stderr);
        assert!(out.stderr.contains("\"experiment_id\":\"e2\""), "manifest line: {}", out.stderr);
        assert!(out.stderr.contains("replicate"), "per-phase timings: {}", out.stderr);
        // The counters must be live, not zero. Skip the manifest JSON
        // line, which also names every counter (as per-run deltas).
        let rounds: u64 = out
            .stderr
            .lines()
            .find(|l| l.contains("rounds_simulated") && !l.starts_with("manifest:"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(rounds > 0, "{}", out.stderr);
    }

    #[test]
    fn run_trace_out_writes_parseable_jsonl_consistent_with_report() {
        use bitdissem_obs::Event;

        let path =
            std::env::temp_dir().join(format!("bitdissem_cli_trace_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let out = dispatch_full(&Args::parse([
            "run",
            "e2",
            "--scale",
            "smoke",
            "--trace-out",
            path_str,
            "--seed",
            "11",
        ]));
        assert_eq!(out.status, Status::Ok, "{}", out.stdout);

        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text.lines().map(|l| Event::from_json(l).expect(l)).collect();
        assert!(!events.is_empty());
        // Bracketing events and the manifest are all present.
        assert!(matches!(&events[0], Event::ExperimentStarted { id, .. } if id == "e2"));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ExperimentFinished { id, pass: true, .. } if id == "e2")));
        let manifest = events
            .iter()
            .find_map(|e| match e {
                Event::Manifest(m) => Some(m.clone()),
                _ => None,
            })
            .expect("manifest in trace");
        assert_eq!(manifest.seed, 11);
        assert_eq!(manifest.scale, "smoke");
        // E2 smoke: 4 population sizes x 30 replications, every one of
        // which converges; the trace must agree with the report.
        let finished: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::ReplicationFinished { outcome, rounds, .. } => Some((*outcome, *rounds)),
                _ => None,
            })
            .collect();
        assert_eq!(finished.len(), 120, "4 sweep points x 30 reps");
        assert!(finished.iter().all(|(o, _)| *o == bitdissem_obs::ReplicationOutcome::Converged));
        // Round events exist and stay consistent with their replication.
        assert!(events.iter().any(|e| matches!(e, Event::RoundCompleted { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_every_thins_round_events() {
        use bitdissem_obs::Event;

        let tmp = std::env::temp_dir();
        let dense_path = tmp.join(format!("bitdissem_dense_{}.jsonl", std::process::id()));
        let sparse_path = tmp.join(format!("bitdissem_sparse_{}.jsonl", std::process::id()));
        let count_rounds = |path: &std::path::Path| {
            std::fs::read_to_string(path)
                .unwrap()
                .lines()
                .filter(|l| matches!(Event::from_json(l).expect(l), Event::RoundCompleted { .. }))
                .count()
        };
        let base = ["run", "e2", "--scale", "smoke", "--seed", "5", "--trace-out"];
        let mut dense: Vec<&str> = base.to_vec();
        let dense_s = dense_path.to_str().unwrap().to_string();
        dense.push(&dense_s);
        assert_eq!(dispatch_full(&Args::parse(dense)).status, Status::Ok);
        let sparse_s = sparse_path.to_str().unwrap().to_string();
        let sparse: Vec<&str> =
            base.iter().copied().chain([sparse_s.as_str(), "--trace-every", "50"]).collect();
        assert_eq!(dispatch_full(&Args::parse(sparse)).status, Status::Ok);
        let (d, s) = (count_rounds(&dense_path), count_rounds(&sparse_path));
        assert!(d > 0 && s > 0);
        assert!(s * 10 < d, "stride 50 must thin the trace: dense={d} sparse={s}");
        let _ = std::fs::remove_file(&dense_path);
        let _ = std::fs::remove_file(&sparse_path);
    }

    #[test]
    fn identical_seeds_give_identical_reports_with_and_without_tracing() {
        let plain = dispatch_full(&Args::parse(["run", "e5", "--scale", "smoke", "--seed", "3"]));
        let path = std::env::temp_dir().join(format!("bitdissem_det_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let traced = dispatch_full(&Args::parse([
            "run",
            "e5",
            "--scale",
            "smoke",
            "--seed",
            "3",
            "--trace-out",
            path_str,
            "--metrics",
        ]));
        let _ = std::fs::remove_file(&path);
        // The manifest line carries wall-clock timing, so compare the
        // deterministic part: everything above the verdict.
        let body = |s: &str| s.split("\nverdict:").next().unwrap().to_string();
        assert_eq!(body(&plain.stdout), body(&traced.stdout));
        assert_eq!(plain.status, traced.status);
    }

    #[test]
    fn resume_without_checkpoint_dir_is_a_usage_error() {
        let (out, status) = run_cli(&["run", "e2", "--scale", "smoke", "--resume"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("--resume requires --checkpoint-dir"), "{out}");
    }

    #[test]
    fn checkpointed_resume_is_byte_identical_and_hits_the_cache() {
        let dir = std::env::temp_dir().join(format!("bitdissem_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();

        let base = ["run", "e2", "--scale", "smoke", "--seed", "13", "--metrics"];
        let plain = dispatch_full(&Args::parse(base));
        assert_eq!(plain.status, Status::Ok, "{}", plain.stdout);

        // Fresh checkpointed run: populates the log, zero cache hits.
        let argv: Vec<&str> =
            base.iter().copied().chain(["--checkpoint-dir", dir_s.as_str()]).collect();
        let fresh = dispatch_full(&Args::parse(argv.clone()));
        assert_eq!(fresh.status, Status::Ok, "{}", fresh.stdout);
        assert_eq!(fresh.stdout, plain.stdout, "checkpointing must not change results");
        let hits = |stderr: &str| -> u64 {
            stderr
                .lines()
                .find(|l| l.contains("checkpoint_hits") && !l.starts_with("manifest:"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        assert_eq!(hits(&fresh.stderr), 0, "{}", fresh.stderr);
        let log = std::fs::read_to_string(dir.join("checkpoint.jsonl")).unwrap();
        assert!(!log.is_empty(), "fresh run must persist checkpoints");
        let manifests = std::fs::read_to_string(dir.join("manifests.jsonl")).unwrap();
        assert!(manifests.contains("\"experiment_id\":\"e2\""), "{manifests}");

        // Resumed run: every replication loads from the log, output is
        // byte-identical to the uninterrupted run.
        let resume: Vec<&str> = argv.iter().copied().chain(["--resume"]).collect();
        let resumed = dispatch_full(&Args::parse(resume));
        assert_eq!(resumed.status, Status::Ok, "{}", resumed.stdout);
        assert_eq!(resumed.stdout, plain.stdout, "resume must be bit-identical");
        assert!(hits(&resumed.stderr) > 0, "{}", resumed.stderr);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_checkpoint_run_truncates_a_stale_log() {
        let dir = std::env::temp_dir().join(format!("bitdissem_trunc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("checkpoint.jsonl"),
            "{\"type\":\"checkpoint\",\"key\":\"stale\",\"payload\":\"c:1\"}\n",
        )
        .unwrap();
        let dir_s = dir.to_str().unwrap().to_string();
        let out = dispatch_full(&Args::parse([
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "13",
            "--checkpoint-dir",
            dir_s.as_str(),
        ]));
        assert_eq!(out.status, Status::Ok, "{}", out.stdout);
        let log = std::fs::read_to_string(dir.join("checkpoint.jsonl")).unwrap();
        assert!(!log.contains("stale"), "non-resume runs must start from an empty log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_env_spec_is_a_usage_error() {
        let (out, status) = run_cli(&["run", "e19", "--scale", "smoke", "--env", "sandstorm"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("invalid env schedule"), "{out}");
        let (out, status) = run_cli(&["conform", "--env", "flip@"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("invalid env schedule"), "{out}");
    }

    #[test]
    fn env_run_records_fingerprint_in_manifests_and_batch_kinds() {
        let dir = temp_dir("envmanifest");
        let dir_s = dir.to_str().unwrap().to_string();
        let out = dispatch_full(&Args::parse([
            "run",
            "e19",
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--env",
            "noise:0.05",
            "--checkpoint-dir",
            dir_s.as_str(),
        ]));
        assert_eq!(out.status, Status::Ok, "{}", out.stdout);
        let manifests = std::fs::read_to_string(dir.join("manifests.jsonl")).unwrap();
        assert!(manifests.contains("\"env\":\"noise:0.05\""), "{manifests}");
        // e19's engine batches run under its flip schedule: their
        // checkpoint keys must carry the env batch kind, never plain
        // "conv", so static caches can never splice into them.
        let log = std::fs::read_to_string(dir.join("checkpoint.jsonl")).unwrap();
        assert!(log.contains("conv+env["), "{}", &log[..log.len().min(400)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_trace_out_is_a_usage_error() {
        let (out, status) =
            run_cli(&["run", "e5", "--scale", "smoke", "--trace-out", "/nonexistent-dir/x.jsonl"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("cannot create trace file"), "{out}");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bitdissem_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bench_smoke_writes_schema_versioned_record() {
        let dir = temp_dir("bench");
        let dir_s = dir.to_str().unwrap().to_string();
        let (out, status) = run_cli(&[
            "bench",
            "--scale",
            "smoke",
            "--seed",
            "1",
            "--label",
            "unit-test",
            "--max-workers",
            "2",
            "--out",
            dir_s.as_str(),
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("wrote"), "{out}");

        let path = dir.join("BENCH_unit-test.json");
        let record = BenchRecord::load(&path).expect("record loads");
        assert_eq!(record.schema_version, bitdissem_obs::BENCH_SCHEMA_VERSION);
        assert_eq!(record.scale, "smoke");
        assert_eq!(record.pool_workers, 2);
        for id in ["agent_step", "aggregate_rounds", "pool_scaling_w1", "checkpoint_write"] {
            let e = record.entry(id).unwrap_or_else(|| panic!("entry {id} in {out}"));
            assert!(e.median() > 0.0, "{id} median must be positive");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_compare_against_own_record_reports_no_regression() {
        let dir = temp_dir("bench_cmp");
        let dir_s = dir.to_str().unwrap().to_string();
        let base = ["bench", "--scale", "smoke", "--seed", "2", "--max-workers", "1"];
        let first: Vec<&str> =
            base.iter().copied().chain(["--label", "base", "--out", dir_s.as_str()]).collect();
        assert_eq!(run_cli(&first).1, Status::Ok);
        let baseline = dir.join("BENCH_base.json");
        let baseline_s = baseline.to_str().unwrap().to_string();
        let second: Vec<&str> = base
            .iter()
            .copied()
            .chain([
                "--label",
                "current",
                "--out",
                dir_s.as_str(),
                "--compare",
                baseline_s.as_str(),
            ])
            .collect();
        let (out, status) = run_cli(&second);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("no regressions"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_compare_flags_a_confirmed_median_drop() {
        // A doctored baseline with impossibly high throughput: the current
        // run's medians drop ~100%, and 100 baseline samples give the KS
        // test the power to confirm the shift.
        let dir = temp_dir("bench_reg");
        let dir_s = dir.to_str().unwrap().to_string();
        let mut fake = BenchRecord::new("fake", "smoke", 3, 1);
        for id in ["agent_step", "aggregate_rounds", "pool_scaling_w1", "checkpoint_write"] {
            fake.push(id, "per_sec", (0..100).map(|i| 1e15 + f64::from(i)).collect());
        }
        let baseline = fake.save(&dir).unwrap();
        let baseline_s = baseline.to_str().unwrap().to_string();

        let argv = [
            "bench",
            "--scale",
            "smoke",
            "--seed",
            "3",
            "--max-workers",
            "1",
            "--label",
            "reg",
            "--out",
            dir_s.as_str(),
            "--compare",
            baseline_s.as_str(),
        ];
        let (out, status) = run_cli(&argv);
        assert_eq!(status, Status::CheckFailed, "{out}");
        assert!(out.contains("REGRESSION"), "{out}");
        assert!(out.contains("regressed"), "{out}");

        // --check-only reports the same regressions but exits cleanly.
        let check_only: Vec<&str> = argv.iter().copied().chain(["--check-only"]).collect();
        let (out, status) = run_cli(&check_only);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("REGRESSION"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_rejects_bad_inputs() {
        let (_, status) = run_cli(&["bench", "--scale", "bogus"]);
        assert_eq!(status, Status::UsageError);
        let (out, status) =
            run_cli(&["bench", "--scale", "smoke", "--compare", "/nonexistent/baseline.json"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("cannot load baseline"), "{out}");
    }

    #[test]
    fn trace_subcommand_passes_a_fresh_e2_trace() {
        let dir = temp_dir("trace_ok");
        let path = dir.join("run.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let out = dispatch_full(&Args::parse([
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "17",
            "--trace-out",
            path_s.as_str(),
        ]));
        assert_eq!(out.status, Status::Ok, "{}", out.stdout);

        let (report, status) = run_cli(&["trace", path_s.as_str()]);
        assert_eq!(status, Status::Ok, "{report}");
        assert!(report.contains("conforms to theory"), "{report}");
        assert!(report.contains("Prop 4"), "{report}");
        assert!(report.contains("Prop 5"), "{report}");
        assert!(!report.contains("VIOLATION"), "{report}");
        // The e2 smoke sweep runs 4 population sizes = 4 conv batches.
        assert!(report.contains("batch 4"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_subcommand_flags_a_doctored_jump() {
        use bitdissem_obs::{Event, ReplicationOutcome};
        let dir = temp_dir("trace_bad");
        let path = dir.join("doctored.jsonl");
        let n = 4096u64;
        // Voter ℓ=1 from X_t = 0.3n: Prop 4 caps the next step at
        // y(0.3, 1)·n ≈ 0.755n, so a jump to 0.9n violates the bound.
        let events = [
            Event::BatchStarted {
                kind: "conv".to_string(),
                protocol: "voter".to_string(),
                ell: 1,
                n,
                x0: 1,
                source_opinion: 1,
                reps: 1,
                budget: 100_000,
                seed: 1,
                g0: vec![0.0, 1.0],
                g1: vec![0.0, 1.0],
            },
            Event::RoundCompleted { rep: 0, round: 5, ones: (3 * n) / 10, source_opinion: 1 },
            Event::RoundCompleted { rep: 0, round: 6, ones: (9 * n) / 10, source_opinion: 1 },
            Event::ReplicationFinished {
                rep: 0,
                outcome: ReplicationOutcome::Converged,
                rounds: 6,
                elapsed_us: 100,
            },
        ];
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        std::fs::write(&path, text).unwrap();

        let (report, status) = run_cli(&["trace", path.to_str().unwrap()]);
        assert_eq!(status, Status::CheckFailed, "{report}");
        assert!(report.contains("VIOLATION rep=0 round=5->6"), "{report}");
        assert!(report.contains("VIOLATIONS FOUND"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conform_rejects_bad_arguments() {
        let (out, status) = run_cli(&["conform", "--scale", "enormous"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown scale"), "{out}");
        let (out, status) = run_cli(&["conform", "--seed", "not-a-number"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("seed"), "{out}");
    }

    #[test]
    fn usage_documents_conform() {
        let (out, status) = run_cli(&["help"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("conform"), "{out}");
        assert!(out.contains("--skip-faults"), "{out}");
    }

    #[test]
    fn trace_rejects_missing_input() {
        let (out, status) = run_cli(&["trace"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("missing trace path"), "{out}");
        let (out, status) = run_cli(&["trace", "/nonexistent/run.jsonl"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("cannot read trace"), "{out}");
    }

    #[test]
    fn trace_rejects_non_trace_files_with_a_clear_error() {
        let dir = temp_dir("trace_nontrace");
        let path = dir.join("not-a-trace.txt");
        std::fs::write(&path, "schema_version,label\n1,x\n").unwrap();
        let (out, status) = run_cli(&["trace", path.to_str().unwrap()]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("not a trace file"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_compare_rejects_a_trace_with_a_clear_error() {
        use bitdissem_obs::Event;
        let dir = temp_dir("bench_trace_guard");
        // Columnar trace handed to --compare.
        let cpath = dir.join("run.bct");
        let sink = ColumnarSink::create(&cpath).unwrap();
        sink.emit(&Event::RoundCompleted { rep: 0, round: 1, ones: 1, source_opinion: 1 });
        drop(sink);
        let (out, status) =
            run_cli(&["bench", "--scale", "smoke", "--compare", cpath.to_str().unwrap()]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("columnar trace, not a BENCH record"), "{out}");
        // JSONL trace handed to --compare.
        let jpath = dir.join("run.jsonl");
        let ev = Event::RoundCompleted { rep: 0, round: 1, ones: 1, source_opinion: 1 };
        std::fs::write(&jpath, format!("{}\n", ev.to_json())).unwrap();
        let (out, status) =
            run_cli(&["bench", "--scale", "smoke", "--compare", jpath.to_str().unwrap()]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("looks like a JSONL trace"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_trace_format_columnar_matches_jsonl_analytics_exactly() {
        // The acceptance contract at CLI level: the same run recorded in
        // both formats must produce byte-identical `trace` reports
        // (summaries, conformance verdicts, exit status).
        let dir = temp_dir("trace_xfmt");
        let jpath = dir.join("run.jsonl");
        let cpath = dir.join("run.bct");
        let (out, status) = run_cli(&[
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "13",
            "--trace-out",
            jpath.to_str().unwrap(),
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        // The same event stream in columnar form (converted, so the two
        // files describe the identical run — wall-clock latencies
        // included).
        let (out, status) =
            run_cli(&["trace", "convert", jpath.to_str().unwrap(), cpath.to_str().unwrap()]);
        assert_eq!(status, Status::Ok, "{out}");
        assert_eq!(
            detect_format(&cpath).unwrap(),
            Some(TraceFormat::Columnar),
            "convert from jsonl must write the binary format"
        );
        // A direct `--trace-format columnar` run also writes the binary
        // format (its analytics differ only by wall-clock latencies, so
        // the byte-for-byte comparison below uses the converted file).
        let direct = dir.join("direct.bct");
        let (out, status) = run_cli(&[
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "13",
            "--trace-out",
            direct.to_str().unwrap(),
            "--trace-format",
            "columnar",
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert_eq!(detect_format(&direct).unwrap(), Some(TraceFormat::Columnar));
        let (jreport, jstatus) = run_cli(&["trace", jpath.to_str().unwrap()]);
        let (creport, cstatus) = run_cli(&["trace", cpath.to_str().unwrap()]);
        assert_eq!(jstatus, Status::Ok, "{jreport}");
        assert_eq!(jreport, creport, "jsonl and columnar analytics must agree");
        assert_eq!(jstatus, cstatus);
        assert!(jreport.contains("conforms"), "{jreport}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_convert_round_trips_both_directions() {
        use bitdissem_obs::read_trace;
        let dir = temp_dir("trace_convert");
        let jpath = dir.join("run.jsonl");
        let cpath = dir.join("run.bct");
        let back = dir.join("back.jsonl");
        let (out, status) = run_cli(&[
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "21",
            "--trace-out",
            jpath.to_str().unwrap(),
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        let (out, status) =
            run_cli(&["trace", "convert", jpath.to_str().unwrap(), cpath.to_str().unwrap()]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("jsonl) ->"), "{out}");
        let (out, status) =
            run_cli(&["trace", "convert", cpath.to_str().unwrap(), back.to_str().unwrap()]);
        assert_eq!(status, Status::Ok, "{out}");
        // Full fidelity: the round-tripped JSONL decodes to the exact
        // original event stream.
        let original = read_trace(&jpath).unwrap();
        let round_tripped = read_trace(&back).unwrap();
        assert_eq!(original.events, round_tripped.events);
        assert_eq!(round_tripped.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_convert_rejects_bad_usage() {
        let (out, status) = run_cli(&["trace", "convert", "/only-one-arg"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("usage: bitdissem trace convert"), "{out}");
    }

    #[test]
    fn trace_format_flag_is_validated() {
        let dir = temp_dir("trace_fmt_flag");
        let path = dir.join("x.trace");
        let (out, status) = run_cli(&[
            "run",
            "e5",
            "--scale",
            "smoke",
            "--trace-out",
            path.to_str().unwrap(),
            "--trace-format",
            "parquet",
        ]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown --trace-format"), "{out}");
        let (out, status) = run_cli(&["run", "e5", "--scale", "smoke", "--trace-format", "jsonl"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("--trace-format requires --trace-out"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_reports_a_torn_columnar_tail() {
        use bitdissem_obs::Event;
        let dir = temp_dir("trace_torn_col");
        let path = dir.join("torn.bct");
        let sink = ColumnarSink::create(&path).unwrap();
        for r in 1..=5 {
            sink.emit(&Event::RoundCompleted { rep: 0, round: r, ones: r, source_opinion: 1 });
        }
        drop(sink);
        // Tear the final block mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (out, status) = run_cli(&["trace", path.to_str().unwrap()]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("torn block"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_needs_a_mode() {
        let (out, status) = run_cli(&["watch"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("--socket PATH or --prom FILE"), "{out}");
        let (_, status) = run_cli(&["watch", "--socket", "a", "--prom", "b"]);
        assert_eq!(status, Status::UsageError);
    }

    #[test]
    fn telemetry_flags_imply_metrics_collection() {
        let obs = build_obs(&Args::parse(["run", "e2", "--telemetry-prom", "/tmp/x.prom"]))
            .expect("obs builds");
        assert!(obs.metrics_on(), "--telemetry-prom must switch metrics on");
        let obs = build_obs(&Args::parse(["run", "e2"])).expect("obs builds");
        assert!(!obs.metrics_on(), "plain runs keep metrics off");
    }

    #[test]
    fn telemetry_interval_without_exporter_is_a_usage_error() {
        let (out, status) =
            run_cli(&["run", "e2", "--scale", "smoke", "--telemetry-interval-ms", "50"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("requires a telemetry exporter flag"), "{out}");
    }

    #[cfg(unix)]
    #[test]
    fn watch_socket_streams_live_snapshots() {
        let path =
            std::env::temp_dir().join(format!("bitdissem_watch_{}.sock", std::process::id()));
        let metrics = Arc::new(bitdissem_obs::Metrics::new());
        metrics.add_rounds(123);
        metrics.record_latency(bitdissem_obs::LatencyId::Replication, 1_500_000);
        let publisher = bitdissem_obs::telemetry::SocketPublisher::bind(&path).unwrap();
        let handle = bitdissem_obs::start_telemetry(
            Arc::clone(&metrics),
            None,
            std::time::Duration::from_millis(5),
            vec![Box::new(publisher)],
        );
        let out = dispatch_full(&Args::parse([
            "watch",
            "--socket",
            path.to_str().unwrap(),
            "--snapshots",
            "2",
        ]));
        handle.stop();
        assert_eq!(out.status, Status::Ok, "{}{}", out.stdout, out.stderr);
        assert!(out.stdout.contains("watched 2 snapshot(s)"), "{}", out.stdout);
        assert!(out.stdout.contains("rounds_simulated"), "{}", out.stdout);
        assert!(out.stdout.contains("p50 / p90 / p99"), "{}", out.stdout);
        assert!(out.stdout.contains("steal ratio"), "{}", out.stdout);
    }

    #[test]
    fn run_with_telemetry_reconciles_prom_against_manifests() {
        let dir = temp_dir("telemetry");
        let prom = dir.join("metrics.prom");
        let bct = dir.join("telemetry.bct");
        let manifests = dir.join("manifests.jsonl");
        let (out, status) = run_cli(&[
            "run",
            "e2",
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--telemetry-prom",
            prom.to_str().unwrap(),
            "--telemetry-out",
            bct.to_str().unwrap(),
            "--telemetry-interval-ms",
            "10",
        ]);
        assert_eq!(status, Status::Ok, "{out}");

        // The final exposition parses and carries the run's counters.
        let text = std::fs::read_to_string(&prom).unwrap();
        let samples = bitdissem_obs::telemetry::parse_prometheus(&text).expect("exposition parses");
        assert!(
            samples.iter().any(|s| s.name == "bitdissem_rounds_simulated_total" && s.value > 0.0),
            "{text}"
        );

        // Exposition totals reconcile with the summed manifest deltas.
        let (out, status) = run_cli(&[
            "watch",
            "--prom",
            prom.to_str().unwrap(),
            "--reconcile",
            manifests.to_str().unwrap(),
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("reconciles with the manifest ledger"), "{out}");

        // The columnar telemetry series is a readable trace.
        let (out, status) = run_cli(&["trace", bct.to_str().unwrap()]);
        assert_eq!(status, Status::Ok, "{out}");

        // A doctored exposition is caught.
        std::fs::write(&prom, "bitdissem_rounds_simulated_total 1\n").unwrap();
        let (out, status) = run_cli(&[
            "watch",
            "--prom",
            prom.to_str().unwrap(),
            "--reconcile",
            manifests.to_str().unwrap(),
        ]);
        assert_eq!(status, Status::CheckFailed, "{out}");
        assert!(out.contains("MISMATCH"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_without_telemetry_flags_matches_telemetry_run_output() {
        let plain = dispatch_full(&Args::parse(["run", "e5", "--scale", "smoke", "--seed", "9"]));
        let dir = temp_dir("telemetry_id");
        let prom = dir.join("m.prom");
        let teled = dispatch_full(&Args::parse([
            "run",
            "e5",
            "--scale",
            "smoke",
            "--seed",
            "9",
            "--telemetry-prom",
            prom.to_str().unwrap(),
        ]));
        assert_eq!(plain.status, teled.status);
        assert_eq!(plain.stdout, teled.stdout, "telemetry must not perturb results");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
