//! Library backing the `bitdissem` command-line tool.
//!
//! Subcommands:
//!
//! * `list` — the experiment registry;
//! * `run <id> [--scale smoke|standard|full] [--seed N] [--csv]` — run an
//!   experiment and print its report;
//! * `analyze <protocol> [--ell L] [--n N]` — bias polynomial, roots, sign
//!   intervals and the Theorem-12 witness of a protocol;
//! * `simulate <protocol> [--ell L] [--n N] [--seed S] [--budget B]
//!   [--sequential]` — one adversarial run with a trajectory summary;
//! * `exact <protocol> [--ell L] [--n N]` — exact expected hitting times
//!   (small `n`).
//!
//! All output goes through a returned `String` so the commands are unit
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;

use std::fmt::Write as _;
use std::str::FromStr;

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_core::dynamics::{self, BoxedProtocol};
use bitdissem_core::Protocol;
use bitdissem_experiments::{registry, RunConfig, Scale};
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::AggregateChain;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::{Outcome, Simulator};
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_sim::trajectory::Trajectory;
use bitdissem_stats::table::fmt_num;

use args::Args;

/// Exit status of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Command succeeded.
    Ok,
    /// Command ran but a directional check failed.
    CheckFailed,
    /// Bad usage.
    UsageError,
}

impl Status {
    /// Process exit code.
    #[must_use]
    pub fn code(self) -> i32 {
        match self {
            Status::Ok => 0,
            Status::CheckFailed => 1,
            Status::UsageError => 2,
        }
    }
}

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "bitdissem — reproduction of 'On the Limits of Information Spread by Memory-less Agents'\n\
     \n\
     usage:\n\
     \x20 bitdissem list\n\
     \x20 bitdissem run <experiment-id|all> [--scale smoke|standard|full] [--seed N] [--csv]\n\
     \x20 bitdissem analyze <protocol> [--ell L] [--n N]\n\
     \x20 bitdissem simulate <protocol> [--ell L] [--n N] [--seed S] [--budget B] [--sequential]\n\
     \x20 bitdissem exact <protocol> [--ell L] [--n N]\n\
     \n\
     protocols: voter, minority, majority, two-choices, lazy-voter, power-voter, anti-voter, stay\n"
        .to_string()
}

fn build_protocol(args: &Args) -> Result<BoxedProtocol, String> {
    let name = args.positional.first().ok_or_else(|| "missing protocol name".to_string())?;
    let ell: usize = args.get_parsed("ell", 3)?;
    match dynamics::by_name(name, ell) {
        Some(Ok(p)) => Ok(p),
        Some(Err(e)) => Err(format!("invalid parameters for '{name}': {e}")),
        None => Err(format!("unknown protocol '{name}'")),
    }
}

/// Runs a parsed command and returns `(output, status)`.
#[must_use]
pub fn dispatch(args: &Args) -> (String, Status) {
    match args.command.as_deref() {
        None | Some("help") => (usage(), Status::Ok),
        Some("list") => cmd_list(),
        Some("run") => cmd_run(args),
        Some("analyze") => cmd_analyze(args),
        Some("simulate") => cmd_simulate(args),
        Some("exact") => cmd_exact(args),
        Some(other) => (format!("unknown command '{other}'\n\n{}", usage()), Status::UsageError),
    }
}

fn cmd_list() -> (String, Status) {
    let mut out = String::from("registered experiments:\n");
    for e in registry::all() {
        let _ = writeln!(out, "  {:<4} {}", e.id, e.description);
    }
    (out, Status::Ok)
}

fn cmd_run(args: &Args) -> (String, Status) {
    let id = match args.positional.first() {
        Some(id) => id.clone(),
        None => return ("missing experiment id\n".to_string(), Status::UsageError),
    };
    let scale = match args.get("scale").map(Scale::from_str).transpose() {
        Ok(s) => s.unwrap_or(Scale::Standard),
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let seed = match args.get_parsed("seed", 2024u64) {
        Ok(s) => s,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let cfg = RunConfig { scale, seed, threads: None };

    let ids: Vec<String> = if id == "all" {
        registry::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        vec![id]
    };
    let mut out = String::new();
    let mut all_pass = true;
    for id in ids {
        match registry::run(&id, &cfg) {
            Some(report) => {
                if args.flag("csv") {
                    for (caption, table) in &report.tables {
                        let _ = writeln!(out, "# {}: {caption}", report.id);
                        out.push_str(&table.to_csv());
                    }
                } else {
                    out.push_str(&report.render());
                    out.push('\n');
                }
                all_pass &= report.pass;
            }
            None => {
                return (format!("unknown experiment '{id}' (try 'list')\n"), Status::UsageError)
            }
        }
    }
    (out, if all_pass { Status::Ok } else { Status::CheckFailed })
}

fn cmd_analyze(args: &Args) -> (String, Status) {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let n = match args.get_parsed("n", 4096u64) {
        Ok(n) if n >= 8 => n,
        Ok(_) => return ("--n must be at least 8\n".to_string(), Status::UsageError),
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let mut out = String::new();
    let _ = writeln!(out, "protocol: {} at n = {n}", protocol.name());
    let f = match BiasPolynomial::build(&protocol, n) {
        Ok(f) => f,
        Err(e) => return (format!("cannot build bias polynomial: {e}\n"), Status::UsageError),
    };
    let _ = writeln!(out, "bias polynomial: F_n(p) = {}", f.as_polynomial());
    let rs = RootStructure::analyze(&f);
    if rs.is_identically_zero() {
        let _ = writeln!(out, "F_n is identically zero (voter-like, Lemma 11)");
    } else {
        let _ = writeln!(out, "roots in [0,1]: {:?}", rs.roots());
        for &(lo, hi, s) in rs.sign_intervals() {
            let _ = writeln!(
                out,
                "  F_n is {} on ({lo:.4}, {hi:.4})",
                if s > 0 { "positive" } else { "negative" }
            );
        }
    }
    let w = LowerBoundWitness::from_bias(&f);
    let _ = writeln!(out, "witness: {}", w.case());
    let (a1, a2, a3) = w.interval_constants();
    let _ = writeln!(out, "  (a1, a2, a3) = ({a1:.4}, {a2:.4}, {a3:.4})");
    let _ = writeln!(out, "  adversarial start: {}", w.start());
    let _ = writeln!(out, "  slow threshold: X = {}", w.threshold());
    let _ = writeln!(
        out,
        "  Theorem 1 predicts >= n^0.9 = {:.0} rounds to cross",
        w.predicted_min_rounds(0.1)
    );
    (out, Status::Ok)
}

fn cmd_simulate(args: &Args) -> (String, Status) {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let n = match args.get_parsed("n", 4096u64) {
        Ok(n) if n >= 8 => n,
        Ok(_) => return ("--n must be at least 8\n".to_string(), Status::UsageError),
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let seed = match args.get_parsed("seed", 1u64) {
        Ok(s) => s,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let budget = match args.get_parsed("budget", 100 * n) {
        Ok(b) => b,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let witness = match LowerBoundWitness::construct(&protocol, n) {
        Ok(w) => w,
        Err(e) => return (format!("cannot build witness: {e}\n"), Status::UsageError),
    };
    let mut rng = rng_from(seed);
    let mut trajectory = Trajectory::new(24);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulating {} from {} ({}, budget {budget} rounds, seed {seed})",
        protocol.name(),
        witness.start(),
        if args.flag("sequential") { "sequential" } else { "parallel" },
    );

    let outcome = if args.flag("sequential") {
        let mut sim = SequentialSim::new(&protocol, witness.start()).expect("validated above");
        run_with_recorder(&mut sim, &mut rng, budget, &mut trajectory)
    } else {
        let mut sim = AggregateSim::new(&protocol, witness.start()).expect("validated above");
        run_with_recorder(&mut sim, &mut rng, budget, &mut trajectory)
    };

    let _ = writeln!(out, "trajectory (round, X/n):");
    for (round, x) in trajectory.iter() {
        let _ = writeln!(out, "  {round:>10}  {}", fmt_num(x as f64 / n as f64));
    }
    match outcome {
        Outcome::Converged { rounds } => {
            let _ = writeln!(out, "converged after {rounds} parallel rounds");
        }
        Outcome::TimedOut { rounds } => {
            let _ = writeln!(out, "not converged within {rounds} rounds (lower bound at work)");
        }
    }
    (out, Status::Ok)
}

fn run_with_recorder<S: Simulator>(
    sim: &mut S,
    rng: &mut bitdissem_sim::rng::SimRng,
    budget: u64,
    trajectory: &mut Trajectory,
) -> Outcome {
    for t in 0..=budget {
        trajectory.record(sim.configuration().ones());
        if sim.configuration().is_correct_consensus() {
            return Outcome::Converged { rounds: t };
        }
        if t == budget {
            break;
        }
        sim.step_round(rng);
    }
    Outcome::TimedOut { rounds: budget }
}

fn cmd_exact(args: &Args) -> (String, Status) {
    let protocol = match build_protocol(args) {
        Ok(p) => p,
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let n = match args.get_parsed("n", 64u64) {
        Ok(n) if (2..=512).contains(&n) => n,
        Ok(n) => {
            return (
                format!("--n must be in [2, 512] for the exact solver, got {n}\n"),
                Status::UsageError,
            )
        }
        Err(e) => return (format!("{e}\n"), Status::UsageError),
    };
    let mut out = String::new();
    for correct in bitdissem_core::Opinion::ALL {
        let chain = match AggregateChain::build(&protocol, n, correct) {
            Ok(c) => c,
            Err(e) => return (format!("cannot build chain: {e}\n"), Status::UsageError),
        };
        match expected_hitting_times(&chain) {
            Some(times) => {
                let (state, worst) = times.worst();
                let _ = writeln!(
                    out,
                    "z = {correct}: worst expected convergence {} rounds (from X = {state})",
                    fmt_num(worst)
                );
            }
            None => {
                let _ =
                    writeln!(out, "z = {correct}: correct consensus unreachable from some state");
            }
        }
    }
    (out, Status::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(argv: &[&str]) -> (String, Status) {
        dispatch(&Args::parse(argv.iter().copied()))
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(run_cli(&[]).1, Status::Ok);
        assert_eq!(run_cli(&["help"]).1, Status::Ok);
        let (out, status) = run_cli(&["frobnicate"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn list_shows_registry() {
        let (out, status) = run_cli(&["list"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("e1"));
        assert!(out.contains("a3"));
    }

    #[test]
    fn analyze_minority() {
        let (out, status) = run_cli(&["analyze", "minority", "--ell", "3", "--n", "1024"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("case 1"), "{out}");
        assert!(out.contains("roots"));
    }

    #[test]
    fn analyze_voter_is_voter_like() {
        let (out, status) = run_cli(&["analyze", "voter", "--ell", "1"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("identically zero"), "{out}");
    }

    #[test]
    fn analyze_rejects_unknown_protocol() {
        let (out, status) = run_cli(&["analyze", "nonsense"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown protocol"));
    }

    #[test]
    fn simulate_voter_small() {
        let (out, status) =
            run_cli(&["simulate", "voter", "--ell", "1", "--n", "64", "--seed", "3"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("trajectory"));
        assert!(out.contains("converged"), "{out}");
    }

    #[test]
    fn simulate_sequential_small() {
        let (out, status) = run_cli(&[
            "simulate",
            "voter",
            "--ell",
            "1",
            "--n",
            "32",
            "--sequential",
            "--budget",
            "100000",
        ]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("sequential"));
    }

    #[test]
    fn exact_solver_voter() {
        let (out, status) = run_cli(&["exact", "voter", "--ell", "1", "--n", "24"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("z = 0"));
        assert!(out.contains("z = 1"));
    }

    #[test]
    fn exact_solver_reports_unreachable_consensus() {
        let (out, status) = run_cli(&["exact", "stay", "--n", "16"]);
        assert_eq!(status, Status::Ok);
        assert!(out.contains("unreachable"), "{out}");
    }

    #[test]
    fn exact_rejects_large_n() {
        let (_, status) = run_cli(&["exact", "voter", "--n", "100000"]);
        assert_eq!(status, Status::UsageError);
    }

    #[test]
    fn run_unknown_experiment() {
        let (out, status) = run_cli(&["run", "e99"]);
        assert_eq!(status, Status::UsageError);
        assert!(out.contains("unknown experiment"));
    }

    #[test]
    fn run_e5_smoke_text_and_csv() {
        let (out, status) = run_cli(&["run", "e5", "--scale", "smoke"]);
        assert_eq!(status, Status::Ok, "{out}");
        assert!(out.contains("verdict"));
        let (csv, status) = run_cli(&["run", "e5", "--scale", "smoke", "--csv"]);
        assert_eq!(status, Status::Ok);
        assert!(csv.contains("protocol,"), "{csv}");
    }

    #[test]
    fn bad_option_values_are_usage_errors() {
        let (_, status) = run_cli(&["run", "e5", "--scale", "bogus"]);
        assert_eq!(status, Status::UsageError);
        let (_, status) = run_cli(&["simulate", "voter", "--n", "abc"]);
        assert_eq!(status, Status::UsageError);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 0);
        assert_eq!(Status::CheckFailed.code(), 1);
        assert_eq!(Status::UsageError.code(), 2);
    }
}
