//! Minimal dependency-free argument parsing.

use std::collections::HashMap;

/// Parsed command line: a subcommand, its positional arguments and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (flags map to an empty string).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// Grammar: the first bare token is the subcommand; later bare tokens
    /// are positionals; `--key value` pairs become options unless the next
    /// token is itself an option or missing, in which case `--key` is a
    /// boolean flag.
    #[must_use]
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => String::new(),
                };
                out.options.insert(key.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending value if parsing fails.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Whether a boolean flag is present.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_positionals_and_options() {
        let a = Args::parse(["run", "e1", "--scale", "full", "--seed", "7", "--csv"]);
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.positional, vec!["e1"]);
        assert_eq!(a.get("scale"), Some("full"));
        assert_eq!(a.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert!(a.flag("csv"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn flags_before_values_do_not_consume_options() {
        let a = Args::parse(["x", "--flag", "--key", "v"]);
        assert!(a.flag("flag"));
        assert_eq!(a.get("key"), Some("v"));
    }

    #[test]
    fn parse_errors_are_reported() {
        let a = Args::parse(["x", "--n", "abc"]);
        assert!(a.get_parsed::<u64>("n", 1).is_err());
        assert_eq!(a.get_parsed::<u64>("missing", 5).unwrap(), 5);
    }

    #[test]
    fn empty_input() {
        let a = Args::parse(Vec::<String>::new());
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }
}
