//! Anchor crate for the workspace-level integration tests.
//!
//! The test sources live in the repository-level `/tests` directory and are
//! wired in through `[[test]]` targets in this crate's manifest, so that
//! `cargo test --workspace` runs them while keeping the conventional
//! repository layout (integration tests spanning crates at the top level).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
