//! Sturm sequences: exact root counting on an interval.
//!
//! Used as an independent cross-check of the Bernstein isolator
//! (ablation A3): the number of distinct real roots of a square-free
//! polynomial in `(a, b]` equals `V(a) − V(b)` where `V(x)` is the number of
//! sign changes of the Sturm chain evaluated at `x`.

use crate::polynomial::Polynomial;

/// The Sturm chain of a polynomial: `p, p', -rem(p, p'), …`.
///
/// Chains are truncated when a remainder becomes numerically zero relative to
/// the coefficient magnitudes involved.
#[derive(Debug, Clone)]
pub struct SturmChain {
    chain: Vec<Polynomial>,
}

impl SturmChain {
    /// Builds the Sturm chain of `p`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitdissem_poly::{Polynomial, sturm::SturmChain};
    /// let p = Polynomial::from_roots(&[0.25, 0.75]);
    /// let chain = SturmChain::new(&p);
    /// assert_eq!(chain.count_roots(0.0, 1.0), 2);
    /// ```
    #[must_use]
    pub fn new(p: &Polynomial) -> Self {
        let mut chain = Vec::new();
        if p.is_zero() {
            return Self { chain };
        }
        let scale = p.max_abs_coeff();
        chain.push(p.clone());
        let d = p.derivative();
        if d.is_zero() {
            return Self { chain };
        }
        chain.push(d);
        loop {
            let n = chain.len();
            let (_, rem) = chain[n - 2].div_rem(&chain[n - 1]);
            let neg = rem.scale(-1.0).cleaned(scale * 1e-12);
            if neg.is_zero() {
                break;
            }
            chain.push(neg);
            if chain.len() > 64 {
                break; // defensive cap; degrees here are tiny
            }
        }
        Self { chain }
    }

    /// Number of sign changes of the chain evaluated at `x`.
    #[must_use]
    pub fn sign_changes_at(&self, x: f64) -> usize {
        let mut changes = 0;
        let mut last: Option<bool> = None;
        for p in &self.chain {
            let v = p.eval(x);
            if v == 0.0 {
                continue;
            }
            let s = v > 0.0;
            if let Some(prev) = last {
                if prev != s {
                    changes += 1;
                }
            }
            last = Some(s);
        }
        changes
    }

    /// Number of distinct real roots in `(a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b`.
    #[must_use]
    pub fn count_roots(&self, a: f64, b: f64) -> usize {
        assert!(a < b, "interval must satisfy a < b, got [{a}, {b}]");
        let va = self.sign_changes_at(a);
        let vb = self.sign_changes_at(b);
        va.saturating_sub(vb)
    }

    /// Length of the chain (for diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// Returns `true` if the chain is empty (zero polynomial input).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }
}

/// Counts distinct roots of `p` in `(a, b]` via a freshly built Sturm chain
/// on the square-free part of `p` (repeated factors are removed first,
/// which keeps the chain short and numerically stable).
///
/// # Panics
///
/// Panics if `a >= b`.
#[must_use]
pub fn count_distinct_roots(p: &Polynomial, a: f64, b: f64) -> usize {
    let sf = crate::gcd::square_free_part(p, 1e-10);
    SturmChain::new(&sf).count_roots(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_roots_of_quadratic() {
        let p = Polynomial::from_roots(&[0.3, 0.7]);
        assert_eq!(count_distinct_roots(&p, 0.0, 1.0), 2);
        assert_eq!(count_distinct_roots(&p, 0.0, 0.5), 1);
        assert_eq!(count_distinct_roots(&p, 0.71, 1.0), 0);
    }

    #[test]
    fn counts_interval_boundaries_half_open() {
        // Interval is (a, b]: a root exactly at `a` is not counted, at `b` is.
        let p = Polynomial::from_roots(&[0.5]);
        assert_eq!(count_distinct_roots(&p, 0.5, 1.0), 0);
        assert_eq!(count_distinct_roots(&p, 0.0, 0.5), 1);
    }

    #[test]
    fn double_root_counted_once() {
        let p = Polynomial::from_roots(&[0.5, 0.5]);
        assert_eq!(count_distinct_roots(&p, 0.0, 1.0), 1);
    }

    #[test]
    fn no_roots_for_positive_polynomial() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        assert_eq!(count_distinct_roots(&p, -10.0, 10.0), 0);
    }

    #[test]
    fn zero_polynomial_yields_empty_chain() {
        let chain = SturmChain::new(&Polynomial::zero());
        assert!(chain.is_empty());
        assert_eq!(chain.count_roots(0.0, 1.0), 0);
    }

    #[test]
    fn cubic_with_three_roots() {
        let p = Polynomial::from_roots(&[0.1, 0.5, 0.9]);
        assert_eq!(count_distinct_roots(&p, 0.0, 1.0), 3);
        assert_eq!(count_distinct_roots(&p, 0.2, 0.6), 1);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn rejects_inverted_interval() {
        let _ = count_distinct_roots(&Polynomial::x(), 1.0, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_sturm_agrees_with_construction(
            mut roots in proptest::collection::vec(0.05f64..0.95, 0..5),
        ) {
            roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assume!(roots.windows(2).all(|w| w[1] - w[0] > 0.05));
            let p = Polynomial::from_roots(&roots);
            if p.degree().is_none() {
                return Ok(());
            }
            let counted = count_distinct_roots(&p, -0.01, 1.01);
            prop_assert_eq!(counted, roots.len());
        }

        #[test]
        fn prop_sturm_agrees_with_bernstein_isolator(
            mut roots in proptest::collection::vec(0.05f64..0.95, 1..5),
        ) {
            roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assume!(roots.windows(2).all(|w| w[1] - w[0] > 0.05));
            let p = Polynomial::from_roots(&roots);
            let bern = crate::roots::roots_in_unit_interval(&p, 1e-12).len();
            let sturm = count_distinct_roots(&p, -0.001, 1.001);
            prop_assert_eq!(bern, sturm);
        }
    }
}
