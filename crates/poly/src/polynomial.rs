//! Dense power-basis polynomials over `f64`.
//!
//! The bias polynomial `F_n` of the paper has degree at most `ℓ + 1`, so all
//! polynomials in this workspace are tiny; a dense `Vec<f64>` representation
//! is both the simplest and the fastest choice.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// Tolerance below which leading coefficients are trimmed to keep degrees
/// meaningful after floating-point arithmetic.
const TRIM_EPS: f64 = 0.0;

/// A polynomial `c[0] + c[1] x + c[2] x² + …` with `f64` coefficients.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// otherwise the leading coefficient is non-zero (exact zeros are trimmed).
///
/// # Examples
///
/// ```
/// use bitdissem_poly::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // 1 - 3x + 2x²
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(1.0), 0.0);
/// assert_eq!(p.eval(0.5), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from power-basis coefficients, lowest degree
    /// first. Exactly-zero leading coefficients are trimmed.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitdissem_poly::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 1.0, 0.0]); // x
    /// assert_eq!(p.degree(), Some(1));
    /// ```
    #[must_use]
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// The monomial `x`.
    #[must_use]
    pub fn x() -> Self {
        Self::new(vec![0.0, 1.0])
    }

    /// Builds the monic polynomial `∏ (x - r)` from its roots.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitdissem_poly::Polynomial;
    /// let p = Polynomial::from_roots(&[1.0, 2.0]);
    /// assert_eq!(p.eval(1.0), 0.0);
    /// assert_eq!(p.eval(2.0), 0.0);
    /// assert_eq!(p.eval(0.0), 2.0);
    /// ```
    #[must_use]
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut p = Self::constant(1.0);
        for &r in roots {
            p = &p * &Self::new(vec![-r, 1.0]);
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Power-basis coefficients, lowest degree first.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Maximum absolute coefficient (`0` for the zero polynomial).
    ///
    /// This is the constant `M` of Claim 17 in the paper.
    #[must_use]
    pub fn max_abs_coeff(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, &c| m.max(c.abs()))
    }

    /// Evaluates the polynomial at `x` using Horner's scheme.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial and its derivative at `x` in a single Horner
    /// pass. Returns `(p(x), p'(x))`.
    #[must_use]
    pub fn eval_with_derivative(&self, x: f64) -> (f64, f64) {
        let mut p = 0.0;
        let mut dp = 0.0;
        for &c in self.coeffs.iter().rev() {
            dp = dp * x + p;
            p = p * x + c;
        }
        (p, dp)
    }

    /// Formal derivative.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitdissem_poly::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 0.0, 1.0]); // x²
    /// assert_eq!(p.derivative(), Polynomial::new(vec![0.0, 2.0]));
    /// ```
    #[must_use]
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        let coeffs = self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| c * i as f64).collect();
        Self::new(coeffs)
    }

    /// Multiplies all coefficients by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Self {
        Self::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Composes with an affine map: returns `q(x) = p(a + b·x)`.
    ///
    /// Used to restrict a polynomial to a sub-interval before isolation.
    #[must_use]
    pub fn compose_affine(&self, a: f64, b: f64) -> Self {
        // Horner in the polynomial ring: q = (((c_d) * (a + b x) + c_{d-1}) ...)
        let shift = Self::new(vec![a, b]);
        let mut q = Self::zero();
        for &c in self.coeffs.iter().rev() {
            q = &(&q * &shift) + &Self::constant(c);
        }
        q
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q·div + r` and `deg r < deg div`.
    ///
    /// # Panics
    ///
    /// Panics if `div` is the zero polynomial.
    #[must_use]
    pub fn div_rem(&self, div: &Self) -> (Self, Self) {
        assert!(!div.is_zero(), "division by the zero polynomial");
        let d = div.coeffs.len();
        if self.coeffs.len() < d {
            return (Self::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0.0; self.coeffs.len() - d + 1];
        let lead = div.coeffs[d - 1];
        for i in (0..quot.len()).rev() {
            let q = rem[i + d - 1] / lead;
            quot[i] = q;
            for (j, &dc) in div.coeffs.iter().enumerate() {
                rem[i + j] -= q * dc;
            }
        }
        rem.truncate(d - 1);
        (Self::new(quot), Self::new(rem))
    }

    /// L∞ distance between coefficient vectors (useful in tests).
    #[must_use]
    pub fn coeff_distance(&self, other: &Self) -> f64 {
        let n = self.coeffs.len().max(other.coeffs.len());
        (0..n)
            .map(|i| {
                let a = self.coeffs.get(i).copied().unwrap_or(0.0);
                let b = other.coeffs.get(i).copied().unwrap_or(0.0);
                (a - b).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Treats coefficients whose magnitude is at most `eps` as zero and trims
    /// accordingly, returning the cleaned polynomial.
    #[must_use]
    pub fn cleaned(&self, eps: f64) -> Self {
        let coeffs = self.coeffs.iter().map(|&c| if c.abs() <= eps { 0.0 } else { c }).collect();
        Self::new(coeffs)
    }

    fn trim(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last.abs() <= TRIM_EPS {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => {
                    if (a - 1.0).abs() > f64::EPSILON {
                        write!(f, "{a}·")?;
                    }
                    write!(f, "x")?;
                }
                _ => {
                    if (a - 1.0).abs() > f64::EPSILON {
                        write!(f, "{a}·")?;
                    }
                    write!(f, "x^{i}")?;
                }
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.coeffs.get(i).copied().unwrap_or(0.0)
                    + rhs.coeffs.get(i).copied().unwrap_or(0.0)
            })
            .collect();
        Polynomial::new(coeffs)
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        self + &(-rhs)
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(3.7), 0.0);
        assert_eq!(format!("{z}"), "0");
    }

    #[test]
    fn new_trims_leading_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn eval_horner_matches_naive() {
        let p = Polynomial::new(vec![3.0, -1.0, 0.5, 2.0]);
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.0, 4.2] {
            let naive = 3.0 - x + 0.5 * x * x + 2.0 * x * x * x;
            assert!(approx(p.eval(x), naive, 1e-12), "x={x}");
        }
    }

    #[test]
    fn eval_with_derivative_consistent() {
        let p = Polynomial::new(vec![1.0, -4.0, 2.0, 7.0]);
        let d = p.derivative();
        for &x in &[-1.0, 0.0, 0.25, 2.0] {
            let (v, dv) = p.eval_with_derivative(x);
            assert!(approx(v, p.eval(x), 1e-12));
            assert!(approx(dv, d.eval(x), 1e-12));
        }
    }

    #[test]
    fn arithmetic_ring_laws_spotcheck() {
        let a = Polynomial::new(vec![1.0, 2.0]);
        let b = Polynomial::new(vec![-1.0, 0.0, 3.0]);
        let c = Polynomial::new(vec![0.5, 0.5, 0.5, 0.5]);
        // distributivity: a*(b+c) == a*b + a*c
        let left = &a * &(&b + &c);
        let right = &(&a * &b) + &(&a * &c);
        assert!(left.coeff_distance(&right) < 1e-12);
        // commutativity of mul
        assert!((&a * &b).coeff_distance(&(&b * &a)) < 1e-12);
    }

    #[test]
    fn from_roots_vanishes_at_roots() {
        let roots = [0.1, 0.5, 0.9, -2.0];
        let p = Polynomial::from_roots(&roots);
        assert_eq!(p.degree(), Some(4));
        for &r in &roots {
            assert!(p.eval(r).abs() < 1e-10, "p({r}) = {}", p.eval(r));
        }
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        assert!(Polynomial::constant(5.0).derivative().is_zero());
        assert!(Polynomial::zero().derivative().is_zero());
    }

    #[test]
    fn compose_affine_evaluates_correctly() {
        let p = Polynomial::new(vec![1.0, 1.0, 1.0]); // 1 + x + x²
        let q = p.compose_affine(2.0, 3.0); // p(2 + 3x)
        for &x in &[0.0, 0.5, 1.0, -1.0] {
            assert!(approx(q.eval(x), p.eval(2.0 + 3.0 * x), 1e-12));
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = Polynomial::new(vec![2.0, -3.0, 1.0, 4.0, -1.0]);
        let b = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let (q, r) = a.div_rem(&b);
        let recon = &(&q * &b) + &r;
        assert!(recon.coeff_distance(&a) < 1e-12);
        assert!(r.degree().unwrap_or(0) < b.degree().unwrap());
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn div_by_zero_panics() {
        let a = Polynomial::x();
        let _ = a.div_rem(&Polynomial::zero());
    }

    #[test]
    fn display_renders_signs() {
        let p = Polynomial::new(vec![-1.0, 2.0, 0.0, -3.0]);
        let s = format!("{p}");
        assert!(s.contains('x'), "{s}");
        assert!(s.starts_with('-'), "{s}");
    }

    #[test]
    fn cleaned_drops_tiny_coefficients() {
        let p = Polynomial::new(vec![1.0, 1e-17, 2.0, 1e-18]);
        let c = p.cleaned(1e-15);
        assert_eq!(c.degree(), Some(2));
        assert_eq!(c.coeffs()[1], 0.0);
    }

    proptest! {
        #[test]
        fn prop_add_eval_pointwise(
            a in proptest::collection::vec(-10.0f64..10.0, 0..6),
            b in proptest::collection::vec(-10.0f64..10.0, 0..6),
            x in -3.0f64..3.0,
        ) {
            let pa = Polynomial::new(a);
            let pb = Polynomial::new(b);
            let sum = &pa + &pb;
            prop_assert!(approx(sum.eval(x), pa.eval(x) + pb.eval(x), 1e-9));
        }

        #[test]
        fn prop_mul_eval_pointwise(
            a in proptest::collection::vec(-5.0f64..5.0, 0..5),
            b in proptest::collection::vec(-5.0f64..5.0, 0..5),
            x in -2.0f64..2.0,
        ) {
            let pa = Polynomial::new(a);
            let pb = Polynomial::new(b);
            let prod = &pa * &pb;
            prop_assert!(approx(prod.eval(x), pa.eval(x) * pb.eval(x), 1e-8));
        }

        #[test]
        fn prop_div_rem_roundtrip(
            a in proptest::collection::vec(-5.0f64..5.0, 1..7),
            b in proptest::collection::vec(-5.0f64..5.0, 1..4),
        ) {
            let pa = Polynomial::new(a);
            let pb = Polynomial::new(b);
            prop_assume!(!pb.is_zero());
            prop_assume!(pb.coeffs().last().unwrap().abs() > 0.1);
            let (q, r) = pa.div_rem(&pb);
            let recon = &(&q * &pb) + &r;
            prop_assert!(recon.coeff_distance(&pa) < 1e-6);
        }

        #[test]
        fn prop_derivative_linear(
            a in proptest::collection::vec(-5.0f64..5.0, 0..6),
            b in proptest::collection::vec(-5.0f64..5.0, 0..6),
        ) {
            let pa = Polynomial::new(a);
            let pb = Polynomial::new(b);
            let d1 = (&pa + &pb).derivative();
            let d2 = &pa.derivative() + &pb.derivative();
            prop_assert!(d1.coeff_distance(&d2) < 1e-10);
        }
    }
}
