//! Polynomial substrate for the `bitdissem` workspace.
//!
//! The central analytical object of D'Archivio & Vacus (PODC 2024) is the
//! *bias polynomial* `F_n(p)` of a memory-less protocol (Eq. 3 of the paper):
//! a polynomial of degree at most `ℓ + 1` whose roots in `[0, 1]` control how
//! fast the proportion of `1`-opinions can drift. This crate provides
//! everything required to manipulate such polynomials rigorously:
//!
//! * [`Polynomial`] — dense power-basis polynomials over `f64` with the usual
//!   ring operations, differentiation and stable Horner evaluation;
//! * [`Bernstein`] — the same polynomials in Bernstein basis on `[0, 1]`,
//!   which is the natural basis for Eq. 3 and enables numerically robust,
//!   variation-diminishing root isolation via de Casteljau subdivision;
//! * [`roots`] — root isolation and refinement on `[0, 1]`, combining
//!   Bernstein subdivision with bisection and Newton polishing;
//! * [`binomial`] — exact (`u128`) and floating-point binomial coefficients
//!   plus numerically stable binomial PMF/CDF evaluation, shared by the
//!   analysis and Markov-chain crates;
//! * [`sturm`] — Sturm-sequence root counting used as an independent
//!   cross-check of the Bernstein isolator (ablation A3).
//!
//! # Example
//!
//! Count the roots of `p(1-p)(p - 1/2)` in `[0, 1]`:
//!
//! ```
//! use bitdissem_poly::{Polynomial, roots::roots_in_unit_interval};
//!
//! let p = Polynomial::from_roots(&[0.0, 1.0, 0.5]);
//! let rs = roots_in_unit_interval(&p, 1e-12);
//! assert_eq!(rs.len(), 3);
//! assert!((rs[1] - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bernstein;
pub mod binomial;
pub mod gcd;
pub mod kernel;
pub mod polynomial;
pub mod roots;
pub mod sturm;

pub use bernstein::Bernstein;
pub use binomial::{binomial_pmf_window, PmfWindow, PMF_WINDOW_REL_EPS};
pub use kernel::{Kernel, KernelError};
pub use polynomial::Polynomial;
