//! Root isolation and refinement on the unit interval.
//!
//! Theorem 12 of the paper inspects the roots of the bias polynomial `F_n`
//! inside `[0, 1]`. This module finds them: Bernstein subdivision isolates
//! intervals that provably contain exactly one root (variation-diminishing
//! property), then bisection plus a Newton polish refines each root to close
//! to machine precision. A dense sign-scan fallback handles near-degenerate
//! polynomials (e.g. `F_n` that is numerically ~0 on a sub-interval).

use crate::bernstein::Bernstein;
use crate::polynomial::Polynomial;

/// An isolated root interval: the polynomial has exactly one sign change on
/// `[lo, hi]` (or the interval collapsed to a point root).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Isolated {
    /// Lower endpoint of the isolating interval (in `[0, 1]`).
    pub lo: f64,
    /// Upper endpoint of the isolating interval (in `[0, 1]`).
    pub hi: f64,
}

/// Finds the *sign-crossing* roots of `p` in `[0, 1]`, sorted increasing and
/// de-duplicated to within `tol`.
///
/// Even-order tangential roots (where `p` touches zero without changing
/// sign) are intentionally not reported: Theorem 12 of the paper only uses
/// the open intervals on which `F_n` has constant sign, and a tangential
/// root does not affect that structure. (Numerically, a tangential root is
/// indistinguishable from a polynomial that merely dips close to zero.)
///
/// Endpoint roots (`p(0) ≈ 0`, `p(1) ≈ 0`) are detected by direct evaluation,
/// because the bias polynomial of any valid protocol vanishes at both ends
/// (Proposition 3).
///
/// # Panics
///
/// Panics if `tol` is not strictly positive.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::{Polynomial, roots::roots_in_unit_interval};
/// let p = Polynomial::from_roots(&[0.0, 0.25, 0.75, 1.0]);
/// let rs = roots_in_unit_interval(&p, 1e-12);
/// assert_eq!(rs.len(), 4);
/// ```
#[must_use]
pub fn roots_in_unit_interval(p: &Polynomial, tol: f64) -> Vec<f64> {
    assert!(tol > 0.0, "tolerance must be positive");
    if p.is_zero() {
        return Vec::new();
    }
    let scale = p.max_abs_coeff().max(1e-300);
    let value_eps = scale * 1e-11;

    let mut roots = Vec::new();
    // Endpoint roots by direct evaluation.
    if p.eval(0.0).abs() <= value_eps {
        roots.push(0.0);
    }
    if p.eval(1.0).abs() <= value_eps {
        roots.push(1.0);
    }

    // Interior roots: Bernstein subdivision.
    let b = Bernstein::from_polynomial(p);
    let mut stack = vec![(b, 0.0f64, 1.0f64)];
    let mut isolated: Vec<Isolated> = Vec::new();
    // Depth cap: 60 halvings is far below f64 resolution exhaustion and
    // plenty for degree ≤ ~40 polynomials.
    while let Some((seg, lo, hi)) = stack.pop() {
        let width = hi - lo;
        let changes = seg.sign_changes();
        if changes == 0 {
            continue;
        }
        if (changes == 1 && width <= 1e-3) || width <= tol {
            isolated.push(Isolated { lo, hi });
            continue;
        }
        let (l, r) = seg.subdivide(0.5);
        let mid = 0.5 * (lo + hi);
        stack.push((l, lo, mid));
        stack.push((r, mid, hi));
    }

    for iso in isolated {
        let r = refine_root(p, iso.lo, iso.hi, tol);
        if (0.0..=1.0).contains(&r) {
            roots.push(r);
        }
    }

    roots.sort_by(|a, b| a.partial_cmp(b).expect("roots are finite"));
    dedup_within(&mut roots, tol.max(1e-10));
    roots
}

/// Refines a root inside `[lo, hi]` by bisection (when the endpoints bracket
/// a sign change) followed by a few guarded Newton steps.
#[must_use]
pub fn refine_root(p: &Polynomial, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    let flo = p.eval(lo);
    let fhi = p.eval(hi);
    let mut x = 0.5 * (lo + hi);
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    if flo.signum() != fhi.signum() {
        // Bisection to tolerance.
        for _ in 0..200 {
            if hi - lo <= tol {
                break;
            }
            x = 0.5 * (lo + hi);
            let fx = p.eval(x);
            if fx == 0.0 {
                return x;
            }
            if fx.signum() == flo.signum() {
                lo = x;
            } else {
                hi = x;
            }
        }
        x = 0.5 * (lo + hi);
    }
    // Newton polish, guarded to stay in the original bracket.
    for _ in 0..8 {
        let (fx, dfx) = p.eval_with_derivative(x);
        if dfx == 0.0 {
            break;
        }
        let nx = x - fx / dfx;
        if !(lo - tol..=hi + tol).contains(&nx) || !nx.is_finite() {
            break;
        }
        if (nx - x).abs() <= f64::EPSILON * x.abs().max(1.0) {
            x = nx;
            break;
        }
        x = nx;
    }
    x.clamp(0.0, 1.0)
}

/// The maximal open sub-intervals of `[0, 1]` on which `p` has constant
/// non-zero sign, given its sorted roots. Returns `(lo, hi, sign)` triples
/// with `sign ∈ {-1, +1}` (intervals where the midpoint value is within
/// numeric zero are skipped).
///
/// # Examples
///
/// ```
/// use bitdissem_poly::{Polynomial, roots::{roots_in_unit_interval, sign_intervals}};
/// let p = Polynomial::from_roots(&[0.0, 0.5, 1.0]); // x(x-1/2)(x-1)
/// let roots = roots_in_unit_interval(&p, 1e-12);
/// let ivs = sign_intervals(&p, &roots);
/// assert_eq!(ivs.len(), 2);
/// assert_eq!(ivs[0].2, 1);  // positive on (0, 1/2)
/// assert_eq!(ivs[1].2, -1); // negative on (1/2, 1)
/// ```
#[must_use]
pub fn sign_intervals(p: &Polynomial, sorted_roots: &[f64]) -> Vec<(f64, f64, i8)> {
    let scale = p.max_abs_coeff().max(1e-300);
    let value_eps = scale * 1e-9;
    let mut bounds = Vec::with_capacity(sorted_roots.len() + 2);
    if sorted_roots.first().copied() != Some(0.0) {
        bounds.push(0.0);
    }
    bounds.extend_from_slice(sorted_roots);
    if sorted_roots.last().copied() != Some(1.0) {
        bounds.push(1.0);
    }
    let mut out = Vec::new();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo <= 1e-12 {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        let v = p.eval(mid);
        if v.abs() <= value_eps {
            continue;
        }
        out.push((lo, hi, if v > 0.0 { 1 } else { -1 }));
    }
    out
}

fn dedup_within(xs: &mut Vec<f64>, tol: f64) {
    if xs.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(xs.len());
    out.push(xs[0]);
    for &x in xs.iter().skip(1) {
        if x - *out.last().expect("non-empty") > tol {
            out.push(x);
        }
    }
    *xs = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_simple_interior_roots() {
        let p = Polynomial::from_roots(&[0.2, 0.5, 0.8]);
        let rs = roots_in_unit_interval(&p, 1e-12);
        assert_eq!(rs.len(), 3);
        for (r, expect) in rs.iter().zip([0.2, 0.5, 0.8]) {
            assert!((r - expect).abs() < 1e-9, "{r} vs {expect}");
        }
    }

    #[test]
    fn finds_endpoint_roots() {
        let p = Polynomial::from_roots(&[0.0, 1.0]);
        let rs = roots_in_unit_interval(&p, 1e-12);
        assert_eq!(rs, vec![0.0, 1.0]);
    }

    #[test]
    fn ignores_roots_outside_unit_interval() {
        let p = Polynomial::from_roots(&[-0.5, 0.3, 1.7]);
        let rs = roots_in_unit_interval(&p, 1e-12);
        assert_eq!(rs.len(), 1);
        assert!((rs[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn no_roots_for_strictly_positive() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // 1 + x²
        assert!(roots_in_unit_interval(&p, 1e-12).is_empty());
    }

    #[test]
    fn zero_polynomial_has_no_reported_roots() {
        assert!(roots_in_unit_interval(&Polynomial::zero(), 1e-12).is_empty());
    }

    #[test]
    fn clustered_roots_never_overcounted() {
        // Two roots 1e-13 apart form a numerically tangential pair: the
        // isolator may report the crossing pair as zero or one root, but
        // never two, and the sign structure stays globally positive-ish.
        let p = Polynomial::from_roots(&[0.5, 0.5 + 1e-13]);
        let rs = roots_in_unit_interval(&p, 1e-9);
        assert!(rs.len() <= 1, "found {rs:?}");
        let ivs = sign_intervals(&p, &rs);
        assert!(ivs.iter().all(|&(_, _, s)| s == 1));
    }

    #[test]
    fn double_root_interval_structure_is_usable() {
        // (x - 0.5)² ≥ 0: even if the tangential root is missed, the sign
        // intervals must all be positive.
        let p = Polynomial::from_roots(&[0.5, 0.5]);
        let rs = roots_in_unit_interval(&p, 1e-12);
        let ivs = sign_intervals(&p, &rs);
        assert!(ivs.iter().all(|&(_, _, s)| s == 1));
    }

    #[test]
    fn sign_intervals_alternate_for_simple_roots() {
        let p = Polynomial::from_roots(&[0.0, 0.3, 0.6, 1.0]);
        let rs = roots_in_unit_interval(&p, 1e-12);
        let ivs = sign_intervals(&p, &rs);
        assert_eq!(ivs.len(), 3);
        for w in ivs.windows(2) {
            assert_ne!(w[0].2, w[1].2, "signs must alternate across simple roots");
        }
    }

    #[test]
    fn refine_root_converges_quadratically_near_root() {
        let p = Polynomial::from_roots(&[0.123_456_789]);
        let r = refine_root(&p, 0.1, 0.2, 1e-15);
        assert!((r - 0.123_456_789).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_nonpositive_tolerance() {
        let _ = roots_in_unit_interval(&Polynomial::x(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_recovers_well_separated_roots(
            mut roots in proptest::collection::vec(0.05f64..0.95, 1..5),
        ) {
            roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Require pairwise separation so the isolation is unambiguous.
            prop_assume!(roots.windows(2).all(|w| w[1] - w[0] > 0.05));
            let p = Polynomial::from_roots(&roots);
            let found = roots_in_unit_interval(&p, 1e-12);
            prop_assert_eq!(found.len(), roots.len());
            for (f, r) in found.iter().zip(&roots) {
                prop_assert!((f - r).abs() < 1e-7, "{} vs {}", f, r);
            }
        }

        #[test]
        fn prop_all_reported_roots_are_roots(
            coeffs in proptest::collection::vec(-5.0f64..5.0, 2..7),
        ) {
            let p = Polynomial::new(coeffs);
            prop_assume!(!p.is_zero());
            let scale = p.max_abs_coeff();
            for r in roots_in_unit_interval(&p, 1e-12) {
                prop_assert!(p.eval(r).abs() <= scale * 1e-6,
                    "claimed root {} has value {}", r, p.eval(r));
            }
        }
    }
}
