//! Binomial coefficients and binomial distribution primitives.
//!
//! Everything downstream of this crate — the bias polynomial (Eq. 3 of the
//! paper), the exact aggregate Markov chain, and the simulation engine's
//! binomial sampler — needs binomial coefficients and PMFs. They are
//! implemented once here, with exact integer versions used to validate the
//! floating-point versions in tests.

/// Exact binomial coefficient `C(n, k)` as a `u128`.
///
/// Uses the multiplicative formula with interleaved division, which is exact
/// because every prefix product `C(n, i)` is an integer.
///
/// # Panics
///
/// Panics on internal overflow if the true value exceeds `u128::MAX`
/// (n ≳ 130 around the central coefficient). Callers in this workspace only
/// use small `n` (sample sizes); use [`ln_choose`] for large arguments.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::binomial::choose;
/// assert_eq!(choose(5, 2), 10);
/// assert_eq!(choose(10, 0), 1);
/// assert_eq!(choose(10, 11), 0);
/// ```
#[must_use]
pub fn choose(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul(u128::from(n - i)).expect("binomial coefficient overflows u128");
        acc /= u128::from(i) + 1;
    }
    acc
}

/// Binomial coefficient `C(n, k)` as an `f64`.
///
/// Exact (via [`choose`]) whenever the result fits in a `u128` and is
/// representable; falls back to [`ln_choose`] exponentiation otherwise.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::binomial::choose_f64;
/// assert_eq!(choose_f64(6, 3), 20.0);
/// ```
#[must_use]
pub fn choose_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if n <= 120 {
        let exact = choose(n, k);
        // u128 -> f64 may round for huge values; acceptable (relative error
        // is at most one ulp of the conversion).
        return exact as f64;
    }
    ln_choose(n, k).exp()
}

/// Natural logarithm of the binomial coefficient, `ln C(n, k)`.
///
/// Computed with the log-gamma function ([`ln_gamma`]), accurate to ~1e-12
/// relative error, suitable for very large `n`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Log-gamma function `ln Γ(x)` for `x > 0`, via the Lanczos approximation.
///
/// Accuracy is ~1e-13 relative over the domain used in this workspace.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients (g = 7, n = 9), standard double-precision set.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Probability mass function of `Binomial(n, p)` at `k`.
///
/// Uses a log-space computation for stability at large `n`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::binomial::binomial_pmf;
/// let p = binomial_pmf(4, 0.5, 2);
/// assert!((p - 0.375).abs() < 1e-12);
/// ```
#[must_use]
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_p.exp()
}

/// Full PMF vector of `Binomial(n, p)`, indices `0..=n`.
///
/// Computed with the stable two-sided recurrence from the mode, which avoids
/// both underflow accumulation and the cost of `n + 1` log-gamma calls.
/// The returned vector sums to 1 within ~1e-12.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn binomial_pmf_vec(n: u64, p: f64) -> Vec<f64> {
    let len = usize::try_from(n).expect("n fits in usize") + 1;
    let mut pmf = vec![0.0; len];
    binomial_pmf_into(n, p, &mut pmf);
    pmf
}

/// Fills `pmf` (length exactly `n + 1`) with the PMF of `Binomial(n, p)`
/// using the same two-sided recurrence as [`binomial_pmf_vec`], without
/// allocating. Callers with a reusable scratch buffer (e.g. the simulator
/// hot path) get bit-identical values to the allocating variant.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `pmf.len() != n + 1`.
pub fn binomial_pmf_into(n: u64, p: f64, pmf: &mut [f64]) {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let len = usize::try_from(n).expect("n fits in usize") + 1;
    assert_eq!(pmf.len(), len, "pmf buffer must have length n + 1");
    pmf.fill(0.0);
    if p == 0.0 {
        pmf[0] = 1.0;
        return;
    }
    if p == 1.0 {
        pmf[len - 1] = 1.0;
        return;
    }
    // Mode of the binomial.
    let mode = (((n + 1) as f64) * p).floor().min(n as f64) as usize;
    pmf[mode] = binomial_pmf(n, p, mode as u64);
    let q = 1.0 - p;
    // Downward recurrence: pmf[k-1] = pmf[k] * k * q / ((n-k+1) * p).
    for k in (1..=mode).rev() {
        pmf[k - 1] = pmf[k] * (k as f64) * q / (((n as usize - k + 1) as f64) * p);
    }
    // Upward recurrence: pmf[k+1] = pmf[k] * (n-k) * p / ((k+1) * q).
    for k in mode..len - 1 {
        pmf[k + 1] = pmf[k] * ((n as usize - k) as f64) * p / (((k + 1) as f64) * q);
    }
}

/// Default relative cutoff for [`binomial_pmf_window`]: entries below
/// `1e-12 ×` the modal mass are dropped into the tracked tail.
pub const PMF_WINDOW_REL_EPS: f64 = 1e-12;

/// An ε-truncated binomial PMF: the contiguous window of states whose mass
/// exceeds `rel_eps` times the modal mass, plus an upper bound on everything
/// that was dropped.
///
/// The window always contains the mode, so `weights` is never empty and the
/// dropped mass satisfies `tail <= 1 - max_weight`.
#[derive(Debug, Clone, PartialEq)]
pub struct PmfWindow {
    /// First state covered by `weights` (absolute index into `0..=n`).
    pub lo: u64,
    /// Probabilities of states `lo..lo + weights.len()`, untruncated values
    /// (bit-identical to [`binomial_pmf_vec`] on the same states).
    pub weights: Vec<f64>,
    /// Upper bound on the total mass outside the window.
    pub tail: f64,
}

impl PmfWindow {
    /// Number of states in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// A window is never empty (it always contains the mode).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// ε-truncated PMF of `Binomial(n, p)`: only the states whose probability is
/// at least `rel_eps` times the modal probability, which for moderate `rel_eps`
/// is a band of `O(sqrt(n log(1/rel_eps)))` states around the mean.
///
/// Values inside the window are computed with the same two-sided ratio
/// recurrence as [`binomial_pmf_into`], so they are bit-identical to the full
/// vector on the shared states. The recurrences are continued past the cutoff
/// (until the terms underflow) to accumulate the *actual* dropped mass, so
/// `tail` is a tight, explicitly tracked truncation bound rather than a crude
/// `len × rel_eps` estimate.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `rel_eps` is not in `(0, 1)`.
#[must_use]
pub fn binomial_pmf_window(n: u64, p: f64, rel_eps: f64) -> PmfWindow {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    assert!(rel_eps > 0.0 && rel_eps < 1.0, "rel_eps must be in (0,1), got {rel_eps}");
    if p == 0.0 || n == 0 {
        return PmfWindow { lo: 0, weights: vec![1.0], tail: 0.0 };
    }
    if p == 1.0 {
        return PmfWindow { lo: n, weights: vec![1.0], tail: 0.0 };
    }
    let q = 1.0 - p;
    let mode = (((n + 1) as f64) * p).floor().min(n as f64) as u64;
    let peak = binomial_pmf(n, p, mode);
    let threshold = rel_eps * peak;

    // Downward from the mode: collect in-window values, then bound the rest
    // of the tail. Below the mode the step ratio `pmf(k-1)/pmf(k)` shrinks
    // as `k` decreases, so after a few out-of-window steps the remaining
    // mass is dominated by a geometric series — an O(1) rigorous bound that
    // avoids marching thousands of serial divisions to underflow.
    let mut below = Vec::new();
    let mut dropped = 0.0_f64;
    let mut v = peak;
    let mut k = mode;
    // In-window walk, bit-identical to `binomial_pmf_into`'s recurrence.
    let mut exited = false;
    while k > 0 {
        v = v * (k as f64) * q / (((n - k + 1) as f64) * p);
        k -= 1;
        if v >= threshold {
            below.push(v);
        } else {
            dropped += v;
            exited = true;
            break;
        }
    }
    if exited {
        let mut out_steps = 1u32;
        while k > 0 && v >= f64::MIN_POSITIVE {
            let r = (k as f64) * q / (((n - k + 1) as f64) * p);
            if r < 1.0 && (out_steps >= 8 || r < 0.5) {
                dropped += v * r / (1.0 - r);
                break;
            }
            v *= r;
            k -= 1;
            dropped += v;
            out_steps += 1;
        }
    }
    let lo = mode - below.len() as u64;

    // Upward from the mode, same scheme (the ratio `pmf(k+1)/pmf(k)` shrinks
    // as `k` grows).
    let mut above = Vec::new();
    let mut v = peak;
    let mut k = mode;
    let mut exited = false;
    while k < n {
        v = v * ((n - k) as f64) * p / (((k + 1) as f64) * q);
        k += 1;
        if v >= threshold {
            above.push(v);
        } else {
            dropped += v;
            exited = true;
            break;
        }
    }
    if exited {
        let mut out_steps = 1u32;
        while k < n && v >= f64::MIN_POSITIVE {
            let r = ((n - k) as f64) * p / (((k + 1) as f64) * q);
            if r < 1.0 && (out_steps >= 8 || r < 0.5) {
                dropped += v * r / (1.0 - r);
                break;
            }
            v *= r;
            k += 1;
            dropped += v;
            out_steps += 1;
        }
    }

    let mut weights = Vec::with_capacity(below.len() + 1 + above.len());
    weights.extend(below.iter().rev());
    weights.push(peak);
    weights.extend(above.iter());
    PmfWindow { lo, weights, tail: dropped.max(0.0) }
}

/// Cumulative distribution function of `Binomial(n, p)`: `P(X <= k)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 1.0;
    }
    let pmf = binomial_pmf_vec(n, p);
    pmf[..=k as usize].iter().sum::<f64>().min(1.0)
}

/// Mean of `Binomial(n, p)`.
#[must_use]
pub fn binomial_mean(n: u64, p: f64) -> f64 {
    n as f64 * p
}

/// Variance of `Binomial(n, p)`.
#[must_use]
pub fn binomial_variance(n: u64, p: f64) -> f64 {
    n as f64 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(0, 0), 1);
        assert_eq!(choose(1, 0), 1);
        assert_eq!(choose(1, 1), 1);
        assert_eq!(choose(5, 2), 10);
        assert_eq!(choose(52, 5), 2_598_960);
        assert_eq!(choose(7, 9), 0);
    }

    #[test]
    fn choose_symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(choose(n, k), choose(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn choose_pascal_identity() {
        for n in 1..50u64 {
            for k in 1..n {
                assert_eq!(
                    choose(n, k),
                    choose(n - 1, k - 1) + choose(n - 1, k),
                    "Pascal fails at n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn choose_f64_matches_exact_small() {
        for n in 0..60u64 {
            for k in 0..=n {
                let exact = choose(n, k) as f64;
                let approx = choose_f64(n, k);
                assert!(
                    (approx - exact).abs() <= exact * 1e-12,
                    "n={n} k={k}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn ln_choose_large_n_accuracy() {
        // C(1000, 500) computed from ln_choose should match Stirling-free
        // iterated exact arithmetic in log space.
        let v = ln_choose(1000, 500);
        // Reference value: ln C(1000,500) ≈ 689.4672616 (lgamma).
        assert!((v - 689.467_261_6).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            fact *= f64::from(n);
            let lg = ln_gamma(f64::from(n) + 1.0);
            assert!((lg - fact.ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.3), (10, 0.5), (100, 0.01), (1000, 0.999), (500, 0.2)] {
            let pmf = binomial_pmf_vec(n, p);
            let s: f64 = pmf.iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "n={n} p={p}: sum {s}");
        }
    }

    #[test]
    fn pmf_vec_matches_pointwise_pmf() {
        let n = 64;
        let p = 0.37;
        let pmf = binomial_pmf_vec(n, p);
        for k in 0..=n {
            let direct = binomial_pmf(n, p, k);
            assert!(
                (pmf[k as usize] - direct).abs() < 1e-12,
                "k={k}: {} vs {direct}",
                pmf[k as usize]
            );
        }
    }

    #[test]
    fn pmf_degenerate_p() {
        let pmf0 = binomial_pmf_vec(5, 0.0);
        assert_eq!(pmf0[0], 1.0);
        assert!(pmf0[1..].iter().all(|&x| x == 0.0));
        let pmf1 = binomial_pmf_vec(5, 1.0);
        assert_eq!(pmf1[5], 1.0);
        assert!(pmf1[..5].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let n = 30;
        let p = 0.42;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(n, p, k);
            assert!(c >= prev - 1e-14, "CDF must be monotone");
            assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
        assert!((binomial_cdf(n, p, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_variance_match_pmf_moments() {
        let n = 40;
        let p = 0.3;
        let pmf = binomial_pmf_vec(n, p);
        let mean: f64 = pmf.iter().enumerate().map(|(k, &w)| k as f64 * w).sum();
        let var: f64 = pmf.iter().enumerate().map(|(k, &w)| (k as f64 - mean).powi(2) * w).sum();
        assert!((mean - binomial_mean(n, p)).abs() < 1e-9);
        assert!((var - binomial_variance(n, p)).abs() < 1e-9);
    }

    #[test]
    fn window_degenerate_cases() {
        let w = binomial_pmf_window(10, 0.0, 1e-12);
        assert_eq!((w.lo, w.weights.as_slice(), w.tail), (0, &[1.0][..], 0.0));
        let w = binomial_pmf_window(10, 1.0, 1e-12);
        assert_eq!((w.lo, w.weights.as_slice(), w.tail), (10, &[1.0][..], 0.0));
        let w = binomial_pmf_window(0, 0.5, 1e-12);
        assert_eq!((w.lo, w.weights.as_slice(), w.tail), (0, &[1.0][..], 0.0));
    }

    #[test]
    fn window_is_narrow_at_large_n() {
        let n = 100_000;
        let w = binomial_pmf_window(n, 0.37, PMF_WINDOW_REL_EPS);
        // ~7.4 sigma per side at rel_eps 1e-12; sigma ~ 153 here.
        assert!(w.len() < 3000, "window unexpectedly wide: {}", w.len());
        assert!(w.tail < 1e-10, "tail too large: {}", w.tail);
        let sum: f64 = w.weights.iter().sum();
        assert!((sum + w.tail - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_window_matches_full_pmf_bitwise(n in 1u64..300, p in 0.0f64..=1.0) {
            let full = binomial_pmf_vec(n, p);
            let w = binomial_pmf_window(n, p, PMF_WINDOW_REL_EPS);
            for (i, &v) in w.weights.iter().enumerate() {
                let k = w.lo as usize + i;
                prop_assert_eq!(v.to_bits(), full[k].to_bits(), "state {}", k);
            }
            // Dropped mass is covered by the tracked tail (plus fp slack).
            let outside: f64 = full
                .iter()
                .enumerate()
                .filter(|(k, _)| *k < w.lo as usize || *k >= w.lo as usize + w.len())
                .map(|(_, &v)| v)
                .sum();
            prop_assert!(outside <= w.tail + 1e-15, "outside {} > tail {}", outside, w.tail);
        }

        #[test]
        fn prop_pmf_nonnegative_and_normalized(n in 1u64..300, p in 0.0f64..=1.0) {
            let pmf = binomial_pmf_vec(n, p);
            prop_assert_eq!(pmf.len(), n as usize + 1);
            for &x in &pmf {
                prop_assert!(x >= 0.0);
            }
            let s: f64 = pmf.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_choose_row_sums_to_power_of_two(n in 0u64..60) {
            let row_sum: u128 = (0..=n).map(|k| choose(n, k)).sum();
            prop_assert_eq!(row_sum, 1u128 << n);
        }

        #[test]
        fn prop_ln_choose_consistent_with_exact(n in 1u64..100, k in 0u64..100) {
            prop_assume!(k <= n);
            let exact = choose(n, k) as f64;
            let viagamma = ln_choose(n, k).exp();
            prop_assert!((viagamma - exact).abs() <= exact * 1e-9 + 1e-9);
        }
    }
}
