//! Precompiled adoption-probability kernels (the Eq.-4 fast path).
//!
//! For a memory-less protocol with decision table `g(b, k)` and sample size
//! `ℓ`, the one-round adoption probabilities of Eq. 4 are fixed degree-`ℓ`
//! polynomials in the 1-fraction `p`:
//!
//! ```text
//! P_b(p) = Σ_k g(b, k) · C(ℓ, k) · p^k · (1 − p)^(ℓ−k)
//! ```
//!
//! The simulator hot loop re-derived these from scratch every round — a
//! fresh binomial-pmf vector per call. A [`Kernel`] instead compiles the
//! two rows **once** into coefficient vectors and evaluates them with an
//! allocation-free Horner pass.
//!
//! # Basis choice
//!
//! Two compiled forms are carried:
//!
//! * **Scaled Bernstein** (the default, used by [`Kernel::eval`]):
//!   `c_k = g_k · C(ℓ, k)`, evaluated as `Σ c_k p^k (1−p)^(ℓ−k)` via a
//!   rational Horner pass. Because `g_k ∈ [0, 1]`, every coefficient is
//!   non-negative and the sum is bounded by the binomial theorem — there is
//!   **no cancellation**, so the relative error stays at a few ulps for any
//!   `ℓ` and the result can only escape `[0, 1]` by rounding noise.
//! * **Monomial** (power basis, [`Kernel::eval_monomial`]): the expansion
//!   `Σ_m a_m p^m` has alternating-sign contributions with `Σ|a_m|` growing
//!   like `3^ℓ`, so plain Horner loses up to `~3^ℓ · ε` absolute accuracy.
//!
//! The `bernstein_basis_dominates_monomial` property test below measures
//! both against a slow exact reference and pins the choice.
//!
//! # Validation
//!
//! [`Kernel::compile`] checks the rows once (finite, in `[0, 1]`, equal
//! length ≥ 2), so the per-round range check collapses to the two clamping
//! compares inside [`Kernel::eval`] — an out-of-tolerance value is
//! impossible for a compiled kernel rather than merely unobserved.

use crate::binomial::choose_f64;

/// Rejected input rows for [`Kernel::compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The two rows have different lengths.
    RowLengthMismatch {
        /// Length of the `g(0, ·)` row.
        g0: usize,
        /// Length of the `g(1, ·)` row.
        g1: usize,
    },
    /// Rows must have length `ℓ + 1 ≥ 2` (a protocol samples `ℓ ≥ 1` peers).
    TooShort {
        /// The offending row length.
        len: usize,
    },
    /// An entry is non-finite or outside `[0, 1]`.
    InvalidEntry {
        /// Row (`0` or `1`).
        own: u8,
        /// Index within the row.
        k: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::RowLengthMismatch { g0, g1 } => {
                write!(f, "g-rows have mismatched lengths {g0} vs {g1}")
            }
            KernelError::TooShort { len } => {
                write!(f, "g-rows need length >= 2 (ell >= 1), got {len}")
            }
            KernelError::InvalidEntry { own, k, value } => {
                write!(f, "g({own}, {k}) = {value} is not a probability in [0, 1]")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Slack allowed around `[0, 1]` before a debug build treats an evaluated
/// probability as corruption rather than rounding noise. Matches the
/// tolerance of the legacy pmf-summation path.
const EVAL_TOL: f64 = 1e-9;

/// A protocol's Eq.-4 adoption probabilities, compiled to fixed
/// coefficient vectors evaluated by allocation-free Horner passes.
///
/// Compile once per protocol, share read-only (e.g. behind an `Arc`)
/// across replications and worker threads.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::kernel::Kernel;
///
/// // Voter ℓ = 1: adopt the sampled opinion, so P_b(p) = p.
/// let kernel = Kernel::compile(&[0.0, 1.0], &[0.0, 1.0])?;
/// let (p0, p1) = kernel.eval(0.3);
/// assert!((p0 - 0.3).abs() < 1e-15);
/// assert!((p1 - 0.3).abs() < 1e-15);
/// # Ok::<(), bitdissem_poly::kernel::KernelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    ell: usize,
    /// Scaled Bernstein coefficients `g_k · C(ℓ, k)`, one vector per row.
    bern0: Vec<f64>,
    bern1: Vec<f64>,
    /// Power-basis coefficients, kept for the basis ablation.
    mono0: Vec<f64>,
    mono1: Vec<f64>,
}

impl Kernel {
    /// Compiles the two decision-table rows `g(0, ·)` and `g(1, ·)`.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the rows disagree in length, are
    /// shorter than 2, or contain a non-finite / out-of-`[0, 1]` entry.
    pub fn compile(g0: &[f64], g1: &[f64]) -> Result<Self, KernelError> {
        if g0.len() != g1.len() {
            return Err(KernelError::RowLengthMismatch { g0: g0.len(), g1: g1.len() });
        }
        if g0.len() < 2 {
            return Err(KernelError::TooShort { len: g0.len() });
        }
        for (own, row) in [(0u8, g0), (1u8, g1)] {
            for (k, &value) in row.iter().enumerate() {
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    return Err(KernelError::InvalidEntry { own, k, value });
                }
            }
        }
        let ell = g0.len() - 1;
        Ok(Self {
            ell,
            bern0: scaled_bernstein(g0),
            bern1: scaled_bernstein(g1),
            mono0: monomial(g0),
            mono1: monomial(g1),
        })
    }

    /// The protocol's sample size `ℓ` (polynomial degree).
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.ell
    }

    /// Evaluates `(P₀(p), P₁(p))` in the scaled-Bernstein form.
    ///
    /// Allocation-free; the only range handling is a clamp to `[0, 1]`
    /// (two compares per value), valid because compile-time validation
    /// bounds the exact sum inside `[0, 1]` and rounding can push it out
    /// by a few ulps at most.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn eval(&self, p: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        // Both polynomials share the degree, so the branch choice, the
        // Horner variable (t or u) and the q^ℓ / p^ℓ scale are computed
        // once and reused — the per-round cost is two fused Horner loops.
        let ell = self.bern0.len() - 1;
        let q = 1.0 - p;
        let (p0, p1) = if p <= 0.5 {
            let t = p / q;
            let scale = q.powi(ell as i32);
            (horner_ascending(&self.bern0, t) * scale, horner_ascending(&self.bern1, t) * scale)
        } else {
            let u = q / p;
            let scale = p.powi(ell as i32);
            (horner_descending(&self.bern0, u) * scale, horner_descending(&self.bern1, u) * scale)
        };
        debug_assert!(
            (-EVAL_TOL..=1.0 + EVAL_TOL).contains(&p0)
                && (-EVAL_TOL..=1.0 + EVAL_TOL).contains(&p1),
            "compiled kernel escaped [0,1] beyond rounding noise: P0={p0} P1={p1} at p={p}"
        );
        (p0.clamp(0.0, 1.0), p1.clamp(0.0, 1.0))
    }

    /// Evaluates `(P₀(p), P₁(p))` for every entry of `ps`, appending to
    /// `out` in order — the lane-friendly batch form of [`Kernel::eval`]
    /// used by the wide replication engine.
    ///
    /// The slice is processed in blocks of [`Kernel::LANES`] values with
    /// the coefficient index in the outer loop and the lane index in the
    /// inner loop, so the compiler can keep the Horner recurrences in
    /// vector registers. Both Horner orientations are computed for every
    /// lane and the per-lane branch (`p ≤ ½` vs `p > ½`) becomes a select;
    /// each orientation performs exactly the arithmetic of the matching
    /// [`Kernel::eval`] branch, so results are **bit-identical** to
    /// element-wise `eval` calls (pinned by a property test).
    ///
    /// # Panics
    ///
    /// Panics if any entry of `ps` is not in `[0, 1]`.
    pub fn eval_slice(&self, ps: &[f64], out: &mut Vec<(f64, f64)>) {
        out.reserve(ps.len());
        let mut chunks = ps.chunks_exact(Self::LANES);
        for chunk in &mut chunks {
            let block: &[f64; Self::LANES] = chunk.try_into().expect("exact chunk");
            out.extend_from_slice(&self.eval_block(block));
        }
        for &p in chunks.remainder() {
            out.push(self.eval(p));
        }
    }

    /// Lane width of the blocked [`Kernel::eval_slice`] pass.
    pub const LANES: usize = 8;

    /// One lane block of [`Kernel::eval_slice`]; see there for the
    /// bit-identity contract with [`Kernel::eval`].
    fn eval_block(&self, ps: &[f64; Self::LANES]) -> [(f64, f64); Self::LANES] {
        const LANES: usize = Kernel::LANES;
        for &p in ps {
            assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        }
        let ell = self.bern0.len() - 1;
        let mut q = [0.0f64; LANES];
        let mut t = [0.0f64; LANES];
        let mut u = [0.0f64; LANES];
        for l in 0..LANES {
            q[l] = 1.0 - ps[l];
            // The unused orientation's variable may be ∞ at an endpoint
            // (q/p at p = 0); its lanes are discarded by the select below.
            t[l] = ps[l] / q[l];
            u[l] = q[l] / ps[l];
        }
        let mut asc0 = [self.bern0[ell]; LANES];
        let mut asc1 = [self.bern1[ell]; LANES];
        for k in (0..ell).rev() {
            for l in 0..LANES {
                asc0[l] = asc0[l] * t[l] + self.bern0[k];
                asc1[l] = asc1[l] * t[l] + self.bern1[k];
            }
        }
        let mut dsc0 = [self.bern0[0]; LANES];
        let mut dsc1 = [self.bern1[0]; LANES];
        for k in 1..=ell {
            for l in 0..LANES {
                dsc0[l] = dsc0[l] * u[l] + self.bern0[k];
                dsc1[l] = dsc1[l] * u[l] + self.bern1[k];
            }
        }
        let mut out = [(0.0f64, 0.0f64); LANES];
        for l in 0..LANES {
            let (p0, p1) = if ps[l] <= 0.5 {
                let scale = q[l].powi(ell as i32);
                (asc0[l] * scale, asc1[l] * scale)
            } else {
                let scale = ps[l].powi(ell as i32);
                (dsc0[l] * scale, dsc1[l] * scale)
            };
            debug_assert!(
                (-EVAL_TOL..=1.0 + EVAL_TOL).contains(&p0)
                    && (-EVAL_TOL..=1.0 + EVAL_TOL).contains(&p1),
                "compiled kernel escaped [0,1] beyond rounding noise: P0={p0} P1={p1} at p={}",
                ps[l]
            );
            out[l] = (p0.clamp(0.0, 1.0), p1.clamp(0.0, 1.0));
        }
        out
    }

    /// Evaluates `(P₀(p), P₁(p))` in the power basis (plain Horner).
    ///
    /// Kept for the basis ablation: measurably less accurate than
    /// [`Kernel::eval`] for larger `ℓ` (see the module docs), and not used
    /// on any hot path.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn eval_monomial(&self, p: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let horner = |c: &[f64]| c.iter().rev().fold(0.0f64, |acc, &a| acc * p + a);
        (horner(&self.mono0).clamp(0.0, 1.0), horner(&self.mono1).clamp(0.0, 1.0))
    }
}

/// `c_k = g_k · C(ℓ, k)` — the scaled Bernstein coefficients.
fn scaled_bernstein(g: &[f64]) -> Vec<f64> {
    let ell = (g.len() - 1) as u64;
    g.iter().enumerate().map(|(k, &gk)| gk * choose_f64(ell, k as u64)).collect()
}

/// Expands `Σ_k g_k C(ℓ,k) p^k (1−p)^(ℓ−k)` into power-basis coefficients
/// `a_m = Σ_{k ≤ m} g_k C(ℓ,k) C(ℓ−k, m−k) (−1)^(m−k)`.
fn monomial(g: &[f64]) -> Vec<f64> {
    let ell = g.len() - 1;
    let ellu = ell as u64;
    (0..=ell)
        .map(|m| {
            let mut a = 0.0;
            for (k, &gk) in g.iter().enumerate().take(m + 1) {
                let sign = if (m - k) % 2 == 0 { 1.0 } else { -1.0 };
                a += gk
                    * choose_f64(ellu, k as u64)
                    * choose_f64(ellu - k as u64, (m - k) as u64)
                    * sign;
            }
            a
        })
        .collect()
}

// The two Horner halves of the scaled-Bernstein evaluation
// `Σ c_k p^k (1−p)^(ℓ−k)`, allocation-free and numerically stable over the
// whole of `[0, 1]`: for `p ≤ 1/2` factor out `(1−p)^ℓ` and run Horner in
// `t = p/(1−p) ≤ 1`; for `p > 1/2` factor out `p^ℓ` and run Horner over
// the reversed coefficients in `u = (1−p)/p ≤ 1`. Either way every
// intermediate is a non-negative sum of non-negative terms with the ratio
// bounded by 1, so no cancellation or overflow can occur, and the
// endpoints are exact (`t = 0` / `u = 0` collapse to a single
// coefficient).

/// Horner over `c` in ascending-index order: `Σ c_k t^k` with `t ≤ 1`.
#[inline]
fn horner_ascending(c: &[f64], t: f64) -> f64 {
    let ell = c.len() - 1;
    let mut acc = c[ell];
    for k in (0..ell).rev() {
        acc = acc * t + c[k];
    }
    acc
}

/// Horner over `c` reversed: `Σ c_k u^(ℓ−k)` with `u ≤ 1`.
#[inline]
fn horner_descending(c: &[f64], u: f64) -> f64 {
    let mut acc = c[0];
    for &ck in &c[1..] {
        acc = acc * u + ck;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::binomial_pmf_vec;
    use proptest::prelude::*;

    /// Slow exact-ish reference: the pmf-weighted sum the legacy
    /// `adoption_probs` path computes.
    fn reference(g: &[f64], p: f64) -> f64 {
        let ell = (g.len() - 1) as u64;
        binomial_pmf_vec(ell, p).iter().zip(g).map(|(&w, &gk)| w * gk).sum()
    }

    /// Higher-precision reference via Kahan-style pairwise summation of the
    /// exact Bernstein terms computed in extended products.
    fn reference_precise(g: &[f64], p: f64) -> f64 {
        let ell = g.len() - 1;
        (0..=ell)
            .map(|k| {
                g[k] * choose_f64(ell as u64, k as u64)
                    * p.powi(k as i32)
                    * (1.0 - p).powi((ell - k) as i32)
            })
            .sum()
    }

    fn dense_grid() -> Vec<f64> {
        let mut grid: Vec<f64> = (0..=200).map(|i| f64::from(i) / 200.0).collect();
        grid.extend_from_slice(&[1e-12, 1e-6, 0.5 - 1e-9, 0.5 + 1e-9, 1.0 - 1e-6, 1.0 - 1e-12]);
        grid
    }

    #[test]
    fn voter_kernel_is_identity() {
        let k = Kernel::compile(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        for &p in &dense_grid() {
            let (p0, p1) = k.eval(p);
            assert!((p0 - p).abs() < 1e-15, "p={p}: {p0}");
            assert_eq!(p0, p1);
        }
        assert_eq!(k.sample_size(), 1);
    }

    #[test]
    fn minority3_matches_hand_expansion() {
        // g = [0, 1, 0, 1] → P(p) = 3p(1−p)² + p³.
        let g = [0.0, 1.0, 0.0, 1.0];
        let k = Kernel::compile(&g, &g).unwrap();
        for &p in &dense_grid() {
            let expect = 3.0 * p * (1.0 - p) * (1.0 - p) + p * p * p;
            let (p0, _) = k.eval(p);
            assert!((p0 - expect).abs() < 1e-14, "p={p}: {p0} vs {expect}");
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let g0 = [0.25, 0.5, 0.75, 1.0];
        let g1 = [1.0, 0.0, 0.5, 0.25];
        let k = Kernel::compile(&g0, &g1).unwrap();
        assert_eq!(k.eval(0.0), (0.25, 1.0), "P_b(0) = g_b[0] exactly");
        assert_eq!(k.eval(1.0), (1.0, 0.25), "P_b(1) = g_b[ℓ] exactly");
    }

    #[test]
    fn compile_rejects_bad_rows() {
        assert!(matches!(
            Kernel::compile(&[0.0, 1.0], &[0.0, 1.0, 0.0]),
            Err(KernelError::RowLengthMismatch { g0: 2, g1: 3 })
        ));
        assert!(matches!(Kernel::compile(&[0.5], &[0.5]), Err(KernelError::TooShort { len: 1 })));
        assert!(matches!(
            Kernel::compile(&[0.0, 1.5], &[0.0, 1.0]),
            Err(KernelError::InvalidEntry { own: 0, k: 1, .. })
        ));
        assert!(matches!(
            Kernel::compile(&[0.0, 1.0], &[f64::NAN, 1.0]),
            Err(KernelError::InvalidEntry { own: 1, k: 0, .. })
        ));
        let err = Kernel::compile(&[0.0, -0.1], &[0.0, 1.0]).unwrap_err();
        assert!(err.to_string().contains("not a probability"), "{err}");
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn eval_rejects_out_of_range_p() {
        let k = Kernel::compile(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let _ = k.eval(1.5);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn eval_slice_rejects_out_of_range_p() {
        let k = Kernel::compile(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let mut out = Vec::new();
        k.eval_slice(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 1.5], &mut out);
    }

    proptest! {
        /// The wide path's contract: `eval_slice` is bit-identical to
        /// element-wise `eval`, for every slice length (full lane blocks
        /// and the scalar remainder) across random tables and a dense grid
        /// including both Horner branches and the endpoints.
        #[test]
        fn eval_slice_is_bit_identical_to_eval(
            g0 in proptest::collection::vec(0.0f64..=1.0, 2..=10),
            g1 in proptest::collection::vec(0.0f64..=1.0, 2..=10),
            len in 0usize..=37,
        ) {
            let rows = g0.len().min(g1.len());
            let k = Kernel::compile(&g0[..rows], &g1[..rows]).unwrap();
            let grid = dense_grid();
            let ps: Vec<f64> = (0..len).map(|i| grid[(i * 7) % grid.len()]).collect();
            let mut wide = Vec::new();
            k.eval_slice(&ps, &mut wide);
            prop_assert_eq!(wide.len(), ps.len());
            for (i, &p) in ps.iter().enumerate() {
                let scalar = k.eval(p);
                prop_assert_eq!(wide[i], scalar, "lane {} at p={}", i, p);
                prop_assert_eq!(wide[i].0.to_bits(), scalar.0.to_bits());
                prop_assert_eq!(wide[i].1.to_bits(), scalar.1.to_bits());
            }
        }

        /// The headline satellite property: the compiled Bernstein kernel
        /// matches the legacy pmf-summation path within 1e-12 across random
        /// valid g-tables (ℓ ≤ 9) and a dense p-grid including endpoints.
        #[test]
        fn kernel_matches_pmf_reference(
            g0 in proptest::collection::vec(0.0f64..=1.0, 2..=10),
            g1 in proptest::collection::vec(0.0f64..=1.0, 2..=10),
        ) {
            let len = g0.len().min(g1.len());
            let (g0, g1) = (&g0[..len], &g1[..len]);
            let k = Kernel::compile(g0, g1).unwrap();
            for &p in &dense_grid() {
                let (k0, k1) = k.eval(p);
                prop_assert!((k0 - reference(g0, p)).abs() < 1e-12, "P0 at p={p}: {k0}");
                prop_assert!((k1 - reference(g1, p)).abs() < 1e-12, "P1 at p={p}: {k1}");
            }
        }

        /// Pins the basis decision: across random tables the Bernstein
        /// form is at least as accurate as the monomial form (it never
        /// cancels), and strictly wins in worst-case error for ℓ ≥ 5.
        #[test]
        fn bernstein_basis_dominates_monomial(
            g in proptest::collection::vec(0.0f64..=1.0, 6..=10),
        ) {
            let k = Kernel::compile(&g, &g).unwrap();
            let mut worst_bern = 0.0f64;
            let mut worst_mono = 0.0f64;
            for &p in &dense_grid() {
                let exact = reference_precise(&g, p);
                worst_bern = worst_bern.max((k.eval(p).0 - exact).abs());
                worst_mono = worst_mono.max((k.eval_monomial(p).0 - exact).abs());
            }
            // A small additive floor keeps the comparison meaningful when
            // both bases are exact (e.g. near-constant tables).
            prop_assert!(
                worst_bern <= worst_mono + 1e-15,
                "bernstein worst {worst_bern} vs monomial worst {worst_mono}"
            );
            prop_assert!(worst_bern < 1e-13, "bernstein error {worst_bern}");
        }
    }
}
