//! Polynomial GCD and square-free decomposition.
//!
//! Sturm's theorem counts *distinct* roots only when applied to a
//! square-free polynomial; dividing by `gcd(p, p′)` removes repeated
//! factors. The Euclidean remainder sequence over `f64` needs careful
//! normalization to stay stable — each remainder is rescaled to unit
//! leading coefficient and cleaned relative to the running scale.

use crate::polynomial::Polynomial;

/// Numerical GCD of two polynomials via the normalized Euclidean
/// algorithm. The result is monic; `gcd(p, 0) = monic(p)` and
/// `gcd(0, 0) = 0`.
///
/// `tol` controls when a remainder is considered zero, relative to the
/// magnitude of the inputs (e.g. `1e-10`).
///
/// # Panics
///
/// Panics if `tol` is not strictly positive.
#[must_use]
pub fn gcd(p: &Polynomial, q: &Polynomial, tol: f64) -> Polynomial {
    assert!(tol > 0.0, "tolerance must be positive");
    let scale = p.max_abs_coeff().max(q.max_abs_coeff());
    if scale == 0.0 {
        return Polynomial::zero();
    }
    let mut a = monic(&p.cleaned(scale * tol));
    let mut b = monic(&q.cleaned(scale * tol));
    if a.degree() < b.degree() {
        std::mem::swap(&mut a, &mut b);
    }
    while !b.is_zero() {
        let (_, r) = a.div_rem(&b);
        let r = r.cleaned(tol * r.max_abs_coeff().max(1.0));
        a = b;
        b = monic(&r);
    }
    a
}

/// The square-free part of `p`: `p / gcd(p, p′)`, monic. Roots of the
/// result are exactly the distinct roots of `p`.
///
/// # Panics
///
/// Panics if `tol` is not strictly positive.
#[must_use]
pub fn square_free_part(p: &Polynomial, tol: f64) -> Polynomial {
    if p.is_zero() {
        return Polynomial::zero();
    }
    if p.degree() == Some(0) {
        return Polynomial::constant(1.0);
    }
    let g = gcd(p, &p.derivative(), tol);
    if g.degree().unwrap_or(0) == 0 {
        return monic(p);
    }
    let (q, _r) = p.div_rem(&g);
    monic(&q)
}

/// Rescales a polynomial to unit leading coefficient (the zero polynomial
/// is returned unchanged).
#[must_use]
pub fn monic(p: &Polynomial) -> Polynomial {
    match p.coeffs().last() {
        None => Polynomial::zero(),
        Some(&lead) => p.scale(1.0 / lead),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn gcd_of_coprime_is_constant() {
        let p = Polynomial::from_roots(&[0.2, 0.8]);
        let q = Polynomial::from_roots(&[0.5]);
        let g = gcd(&p, &q, TOL);
        assert_eq!(g.degree(), Some(0));
    }

    #[test]
    fn gcd_extracts_common_factor() {
        let common = Polynomial::from_roots(&[0.3, 0.6]);
        let p = &common * &Polynomial::from_roots(&[0.9]);
        let q = &common * &Polynomial::from_roots(&[0.1, 0.2]);
        let g = gcd(&p, &q, TOL);
        assert_eq!(g.degree(), Some(2));
        assert!(g.eval(0.3).abs() < 1e-7);
        assert!(g.eval(0.6).abs() < 1e-7);
    }

    #[test]
    fn gcd_with_zero() {
        let p = Polynomial::from_roots(&[0.4]);
        let g = gcd(&p, &Polynomial::zero(), TOL);
        assert_eq!(g.degree(), Some(1));
        assert!(gcd(&Polynomial::zero(), &Polynomial::zero(), TOL).is_zero());
    }

    #[test]
    fn square_free_removes_multiplicities() {
        // (x − 0.5)³ (x − 0.2) → square-free part (x − 0.5)(x − 0.2).
        let p = Polynomial::from_roots(&[0.5, 0.5, 0.5, 0.2]);
        let sf = square_free_part(&p, TOL);
        assert_eq!(sf.degree(), Some(2));
        assert!(sf.eval(0.5).abs() < 1e-6);
        assert!(sf.eval(0.2).abs() < 1e-6);
        // Derivative no longer vanishes at 0.5.
        assert!(sf.derivative().eval(0.5).abs() > 1e-3);
    }

    #[test]
    fn square_free_of_square_free_is_itself() {
        let p = Polynomial::from_roots(&[0.1, 0.5, 0.9]);
        let sf = square_free_part(&p, TOL);
        assert_eq!(sf.degree(), p.degree());
        assert!(sf.coeff_distance(&monic(&p)) < 1e-7);
    }

    #[test]
    fn square_free_degenerate_inputs() {
        assert!(square_free_part(&Polynomial::zero(), TOL).is_zero());
        let c = square_free_part(&Polynomial::constant(7.0), TOL);
        assert_eq!(c.degree(), Some(0));
    }

    #[test]
    fn monic_normalizes_leading_coefficient() {
        let p = Polynomial::new(vec![2.0, 4.0]);
        let m = monic(&p);
        assert_eq!(m.coeffs().last(), Some(&1.0));
        assert!(monic(&Polynomial::zero()).is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_gcd_divides_both(
            mut r1 in proptest::collection::vec(0.05f64..0.95, 1..3),
            mut r2 in proptest::collection::vec(0.05f64..0.95, 1..3),
            shared in 0.1f64..0.9,
        ) {
            // Keep roots separated from the shared one for stability.
            r1.retain(|r| (r - shared).abs() > 0.05);
            r2.retain(|r| (r - shared).abs() > 0.05);
            let p = &Polynomial::from_roots(&r1) * &Polynomial::from_roots(&[shared]);
            let q = &Polynomial::from_roots(&r2) * &Polynomial::from_roots(&[shared]);
            let g = gcd(&p, &q, 1e-9);
            prop_assert!(g.degree().unwrap_or(0) >= 1, "shared root must be found");
            prop_assert!(g.eval(shared).abs() < 1e-5, "g({}) = {}", shared, g.eval(shared));
        }

        #[test]
        fn prop_square_free_has_distinct_roots_of_original(
            mut roots in proptest::collection::vec(0.1f64..0.9, 1..4),
            dup in 0usize..3,
        ) {
            roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assume!(roots.windows(2).all(|w| w[1] - w[0] > 0.08));
            let mut with_dups = roots.clone();
            if let Some(&r) = roots.get(dup.min(roots.len() - 1)) {
                with_dups.push(r); // one duplicated root
            }
            let p = Polynomial::from_roots(&with_dups);
            let sf = square_free_part(&p, 1e-9);
            prop_assert_eq!(sf.degree(), Some(roots.len()));
            for &r in &roots {
                prop_assert!(sf.eval(r).abs() < 1e-4, "sf({}) = {}", r, sf.eval(r));
            }
        }
    }
}
