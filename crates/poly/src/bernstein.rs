//! Bernstein-basis representation of polynomials on `[0, 1]`.
//!
//! The bias polynomial of the paper (Eq. 3) is *naturally* a Bernstein-form
//! polynomial: the term `C(ℓ,k) p^k (1-p)^{ℓ-k}` is exactly the Bernstein
//! basis polynomial `B_{k,ℓ}(p)`. Working in this basis gives two things the
//! power basis cannot:
//!
//! 1. **Numerically stable evaluation** on `[0, 1]` via de Casteljau;
//! 2. **Variation-diminishing root isolation**: the number of roots in
//!    `[0, 1]` is bounded by the number of sign changes of the Bernstein
//!    coefficients, and subdivision tightens the bound until each
//!    sub-interval provably contains zero or one root.

use serde::{Deserialize, Serialize};

use crate::binomial::choose_f64;
use crate::polynomial::Polynomial;

/// A polynomial in Bernstein form of a fixed degree on `[0, 1]`:
/// `p(x) = Σ_k b[k] · C(d,k) x^k (1-x)^{d-k}`.
///
/// # Examples
///
/// ```
/// use bitdissem_poly::Bernstein;
///
/// // x(1-x) in degree-2 Bernstein form has coefficients [0, 1/2, 0].
/// let b = Bernstein::new(vec![0.0, 0.5, 0.0]);
/// assert!((b.eval(0.5) - 0.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bernstein {
    coeffs: Vec<f64>,
}

impl Bernstein {
    /// Creates a Bernstein-form polynomial of degree `coeffs.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty (the representation has no degree).
    #[must_use]
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "Bernstein form needs at least one coefficient");
        Self { coeffs }
    }

    /// Converts a power-basis polynomial into Bernstein form of degree
    /// `max(deg p, 1)` (or a requested higher degree via
    /// [`Bernstein::elevate`]).
    ///
    /// Conversion formula: `b_k = Σ_{i<=k} C(k,i)/C(d,i) · a_i` where `a_i`
    /// are power coefficients.
    #[must_use]
    pub fn from_polynomial(p: &Polynomial) -> Self {
        let d = p.degree().unwrap_or(0).max(1);
        let a = p.coeffs();
        let mut b = vec![0.0; d + 1];
        for (k, bk) in b.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &ai) in a.iter().enumerate().take(k + 1) {
                acc += choose_f64(k as u64, i as u64) / choose_f64(d as u64, i as u64) * ai;
            }
            *bk = acc;
        }
        Self { coeffs: b }
    }

    /// Converts back to a power-basis [`Polynomial`] by expanding each basis
    /// function `C(d,k) x^k (1-x)^{d-k}` — exact in rational arithmetic and
    /// accurate to a few ulps for the tiny degrees used here.
    #[must_use]
    pub fn to_polynomial(&self) -> Polynomial {
        let d = self.degree();
        let mut acc = Polynomial::zero();
        for (k, &bk) in self.coeffs.iter().enumerate() {
            if bk == 0.0 {
                continue;
            }
            // C(d,k) x^k (1-x)^{d-k}
            let mut basis = Polynomial::constant(choose_f64(d as u64, k as u64));
            for _ in 0..k {
                basis = &basis * &Polynomial::x();
            }
            let one_minus_x = Polynomial::new(vec![1.0, -1.0]);
            for _ in 0..(d - k) {
                basis = &basis * &one_minus_x;
            }
            acc = &acc + &basis.scale(bk);
        }
        acc
    }

    /// Degree of the representation (length of coefficients minus one).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Bernstein coefficients (control values).
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates at `t ∈ [0, 1]` with the de Casteljau algorithm
    /// (backward-stable for `t` in the unit interval).
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        let mut v = self.coeffs.clone();
        let n = v.len();
        for r in 1..n {
            for i in 0..n - r {
                v[i] = (1.0 - t) * v[i] + t * v[i + 1];
            }
        }
        v[0]
    }

    /// Degree elevation by one: returns the same polynomial expressed with
    /// one more coefficient.
    #[must_use]
    pub fn elevate(&self) -> Self {
        let d = self.degree();
        let mut out = vec![0.0; d + 2];
        out[0] = self.coeffs[0];
        out[d + 1] = self.coeffs[d];
        for (i, o) in out.iter_mut().enumerate().take(d + 1).skip(1) {
            let a = i as f64 / (d as f64 + 1.0);
            *o = a * self.coeffs[i - 1] + (1.0 - a) * self.coeffs[i];
        }
        Self { coeffs: out }
    }

    /// Subdivides at `t`, returning the Bernstein forms of the restrictions
    /// to `[0, t]` and `[t, 1]`, each re-parameterized onto `[0, 1]`.
    #[must_use]
    pub fn subdivide(&self, t: f64) -> (Self, Self) {
        let n = self.coeffs.len();
        let mut tri = self.coeffs.clone();
        let mut left = Vec::with_capacity(n);
        let mut right = vec![0.0; n];
        left.push(tri[0]);
        right[n - 1] = tri[n - 1];
        for r in 1..n {
            for i in 0..n - r {
                tri[i] = (1.0 - t) * tri[i] + t * tri[i + 1];
            }
            left.push(tri[0]);
            right[n - 1 - r] = tri[n - 1 - r];
        }
        (Self { coeffs: left }, Self { coeffs: right })
    }

    /// Number of strict sign changes in the coefficient sequence (zeros are
    /// skipped). By the variation-diminishing property this upper-bounds the
    /// number of roots in `(0, 1)`.
    #[must_use]
    pub fn sign_changes(&self) -> usize {
        let mut changes = 0;
        let mut last: Option<bool> = None;
        for &c in &self.coeffs {
            if c == 0.0 {
                continue;
            }
            let s = c > 0.0;
            if let Some(prev) = last {
                if prev != s {
                    changes += 1;
                }
            }
            last = Some(s);
        }
        changes
    }

    /// Maximum absolute coefficient. Since Bernstein forms a partition of
    /// unity, this bounds `|p|` on `[0, 1]`.
    #[must_use]
    pub fn max_abs_coeff(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, &c| m.max(c.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn roundtrip_power_bernstein_power() {
        let p = Polynomial::new(vec![0.25, -1.5, 2.0, 1.0]);
        let b = Bernstein::from_polynomial(&p);
        let q = b.to_polynomial();
        assert!(p.coeff_distance(&q) < 1e-10, "distance {}", p.coeff_distance(&q));
    }

    #[test]
    fn eval_matches_power_basis() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0]);
        let b = Bernstein::from_polynomial(&p);
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            assert!(approx(b.eval(t), p.eval(t), 1e-12), "t={t}");
        }
    }

    #[test]
    fn partition_of_unity() {
        // Constant 1 has all Bernstein coefficients equal to 1.
        let b = Bernstein::from_polynomial(&Polynomial::constant(1.0));
        for &c in b.coeffs() {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn elevation_preserves_values() {
        let b = Bernstein::new(vec![0.0, 1.0, -1.0, 0.5]);
        let e = b.elevate().elevate();
        assert_eq!(e.degree(), b.degree() + 2);
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            assert!(approx(e.eval(t), b.eval(t), 1e-12), "t={t}");
        }
    }

    #[test]
    fn subdivision_preserves_values() {
        let b = Bernstein::new(vec![1.0, -0.5, 0.25, 2.0, -1.0]);
        let (l, r) = b.subdivide(0.3);
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            // left covers [0, 0.3]
            assert!(approx(l.eval(u), b.eval(0.3 * u), 1e-12), "left u={u}");
            // right covers [0.3, 1]
            assert!(approx(r.eval(u), b.eval(0.3 + 0.7 * u), 1e-12), "right u={u}");
        }
    }

    #[test]
    fn sign_changes_counts_strictly() {
        assert_eq!(Bernstein::new(vec![1.0, 2.0, 3.0]).sign_changes(), 0);
        assert_eq!(Bernstein::new(vec![1.0, -2.0, 3.0]).sign_changes(), 2);
        assert_eq!(Bernstein::new(vec![1.0, 0.0, -3.0]).sign_changes(), 1);
        assert_eq!(Bernstein::new(vec![0.0, 0.0, 0.0]).sign_changes(), 0);
    }

    #[test]
    fn sign_changes_bound_roots() {
        // (x - 0.3)(x - 0.7) has 2 roots in (0,1) -> at least 2 sign changes.
        let p = Polynomial::from_roots(&[0.3, 0.7]);
        let b = Bernstein::from_polynomial(&p);
        assert!(b.sign_changes() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_coeffs_panics() {
        let _ = Bernstein::new(Vec::new());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(coeffs in proptest::collection::vec(-10.0f64..10.0, 1..7)) {
            let p = Polynomial::new(coeffs);
            let b = Bernstein::from_polynomial(&p);
            let q = b.to_polynomial();
            prop_assert!(p.coeff_distance(&q) < 1e-7);
        }

        #[test]
        fn prop_eval_agreement(
            coeffs in proptest::collection::vec(-10.0f64..10.0, 1..7),
            t in 0.0f64..=1.0,
        ) {
            let p = Polynomial::new(coeffs);
            let b = Bernstein::from_polynomial(&p);
            prop_assert!(approx(b.eval(t), p.eval(t), 1e-9));
        }

        #[test]
        fn prop_subdivision_variation_diminishing(
            coeffs in proptest::collection::vec(-5.0f64..5.0, 2..7),
            t in 0.05f64..0.95,
        ) {
            let b = Bernstein::new(coeffs);
            let (l, r) = b.subdivide(t);
            prop_assert!(l.sign_changes() + r.sign_changes() <= b.sign_changes() + 1);
        }

        #[test]
        fn prop_max_abs_coeff_bounds_values(
            coeffs in proptest::collection::vec(-5.0f64..5.0, 1..8),
            t in 0.0f64..=1.0,
        ) {
            let b = Bernstein::new(coeffs);
            prop_assert!(b.eval(t).abs() <= b.max_abs_coeff() + 1e-9);
        }
    }
}
