//! The differential conformance matrix.
//!
//! A *grid cell* is `(protocol, ℓ, n, X₀)`. For each cell the harness
//! samples every backend with its own independent seed stream and compares
//! backend pairs that are equal in law:
//!
//! * parallel law — the adjacent chain `agent` vs `aggregate`, `aggregate`
//!   vs `partial(n−1)`, `partial(n−1)` vs `batched` (the lock-step
//!   replication engine) and `batched` vs `wide` (the counter-rng lane
//!   engine, whose statistical admission lives here): censored
//!   consensus-time distribution (in rounds) plus the marginal `X_r` at
//!   each early checkpoint round;
//! * per-activation law — `sequential` vs `partial(1)`: censored
//!   consensus-time distribution **in activations** plus marginals at
//!   activation checkpoints (multiples of `n`);
//! * duality — coalescing-dual absorption time vs forward Voter `ℓ = 1`
//!   consensus time from the all-wrong start;
//! * exact oracle — i.i.d. draws from the sparse chain's exact law
//!   ([`crate::oracle::sample_exact`]) against each of the five parallel
//!   backends under the same KS gates, plus the deterministic
//!   sparse~dense row admission and the large-`n` drift-band envelopes.
//!
//! Every comparison is a two-sample KS test at level
//! `α = alpha_budget / #checks` (Bonferroni), so the whole matrix has
//! false-alarm probability at most `alpha_budget`. The Minority cells with
//! `ℓ ≥ 3` mostly censor at the budget (the dynamics attract `X/n = 1/2`),
//! which keeps their *time* checks degenerate-but-valid — identical laws
//! censor identically — while their marginal checks carry the real power.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, GTable, Opinion, ProtocolExt};
use bitdissem_sim::rng::splitmix64;
use bitdissem_stats::compare::{ks_critical_value, ks_statistic};

use bitdissem_sim::env::EnvSchedule;

use crate::backend::{
    sample_activation, sample_dual, sample_parallel, sample_parallel_env, ActivationBackend,
    ParallelBackend, RunSamples,
};
use crate::oracle::{drift_band_check, sample_exact, sparse_dense_check};

/// How much of the matrix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConformScale {
    /// CI-sized: 3 cells, one `n`, ~100 replications. Seconds.
    Smoke,
    /// The acceptance grid: Voter and Minority at `ℓ ∈ {1, 3, 5}`,
    /// `n ∈ {32, 64}`, both starts. About a minute in release.
    Standard,
    /// The standard grid with more replications and an extra `n`.
    Full,
}

impl std::str::FromStr for ConformScale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(ConformScale::Smoke),
            "standard" => Ok(ConformScale::Standard),
            "full" => Ok(ConformScale::Full),
            other => Err(format!("unknown scale '{other}' (expected smoke|standard|full)")),
        }
    }
}

impl ConformScale {
    /// Canonical name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ConformScale::Smoke => "smoke",
            ConformScale::Standard => "standard",
            ConformScale::Full => "full",
        }
    }
}

/// A protocol family of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The Voter dynamics (`g(z, k) = k/ℓ`).
    Voter,
    /// The Minority dynamics.
    Minority,
}

/// One protocol cell: family plus sample size `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Protocol family.
    pub kind: ProtocolKind,
    /// Sample size `ℓ` (odd for Minority).
    pub ell: usize,
}

impl Cell {
    fn label(&self) -> String {
        match self.kind {
            ProtocolKind::Voter => format!("voter(l={})", self.ell),
            ProtocolKind::Minority => format!("minority(l={})", self.ell),
        }
    }

    fn table(&self, n: u64) -> GTable {
        match self.kind {
            ProtocolKind::Voter => {
                Voter::new(self.ell).expect("valid ell").to_table(n).expect("valid cell")
            }
            ProtocolKind::Minority => {
                Minority::new(self.ell).expect("valid ell").to_table(n).expect("valid cell")
            }
        }
    }
}

/// Initial configuration of a grid cell (the source holds opinion 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Only the source is correct: `X₀ = 1`.
    AllWrong,
    /// Half the population is correct: `X₀ = n/2`.
    Half,
}

impl StartKind {
    fn label(self) -> &'static str {
        match self {
            StartKind::AllWrong => "all_wrong",
            StartKind::Half => "half",
        }
    }

    fn configuration(self, n: u64) -> Configuration {
        match self {
            StartKind::AllWrong => Configuration::all_wrong(n, Opinion::One),
            StartKind::Half => {
                Configuration::new(n, Opinion::One, n / 2).expect("n/2 is a valid count")
            }
        }
    }
}

/// The full matrix specification.
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Scale preset this config was built from.
    pub scale: ConformScale,
    /// Protocol cells.
    pub cells: Vec<Cell>,
    /// Population sizes.
    pub ns: Vec<u64>,
    /// Initial configurations (parallel-law pairs only; the activation
    /// and dual comparisons always start from all-wrong).
    pub starts: Vec<StartKind>,
    /// Replications per backend per cell.
    pub reps: usize,
    /// Round budget for parallel-law runs (activation runs get
    /// `budget · n` activations, the same number of agent updates).
    pub budget: u64,
    /// Checkpoint rounds for parallel marginals.
    pub checkpoints: Vec<u64>,
    /// Activation checkpoints as multiples of `n`.
    pub act_checkpoint_mults: Vec<u64>,
    /// Environment schedules (in `--env` grammar) the parallel backends
    /// are additionally compared under, from the first start kind. Every
    /// engine must satisfy the same perturbed law — the env section holds
    /// all five to it with the same KS gates as the static section.
    pub env_specs: Vec<String>,
    /// Population size for the drift-band oracle section (one check per
    /// protocol cell: wide-engine steps inside exact-row envelopes).
    pub drift_n: u64,
    /// Wide-engine replications per drift-band cell.
    pub drift_reps: usize,
    /// Rounds per drift-band replication.
    pub drift_rounds: u64,
    /// Total false-alarm budget, Bonferroni-split across all checks.
    pub alpha_budget: f64,
}

impl ConformConfig {
    /// The preset matrix for `scale`.
    #[must_use]
    pub fn for_scale(scale: ConformScale) -> Self {
        let voter = |ell| Cell { kind: ProtocolKind::Voter, ell };
        let minority = |ell| Cell { kind: ProtocolKind::Minority, ell };
        let common = ConformConfig {
            scale,
            cells: vec![voter(1), voter(3), voter(5), minority(1), minority(3), minority(5)],
            ns: vec![32, 64],
            starts: vec![StartKind::AllWrong, StartKind::Half],
            reps: 300,
            budget: 1500,
            checkpoints: vec![1, 2, 4],
            act_checkpoint_mults: vec![1, 2, 4],
            // A mid-run source flip (checkpoints straddle it) and steady
            // per-round opinion noise: the two qualitatively different
            // perturbations — target moves vs state diffuses.
            env_specs: vec!["flip@2".to_string(), "noise:0.01".to_string()],
            drift_n: 4096,
            drift_reps: 24,
            drift_rounds: 24,
            alpha_budget: 1e-9,
        };
        match scale {
            ConformScale::Smoke => ConformConfig {
                cells: vec![voter(1), voter(3), minority(3)],
                ns: vec![24],
                reps: 100,
                budget: 400,
                drift_n: 1024,
                drift_reps: 12,
                drift_rounds: 12,
                ..common
            },
            ConformScale::Standard => common,
            ConformScale::Full => ConformConfig {
                ns: vec![32, 64, 128],
                reps: 800,
                drift_n: 8192,
                drift_reps: 32,
                drift_rounds: 32,
                ..common
            },
        }
    }

    /// Number of checks the matrix performs — the Bonferroni divisor (the
    /// deterministic oracle checks are counted too, which only makes the
    /// per-test level more conservative).
    #[must_use]
    pub fn num_checks(&self) -> usize {
        let per_parallel_pair = 1 + self.checkpoints.len();
        // Four adjacent parallel-law pairs (agent~aggregate,
        // aggregate~partial(n−1), partial(n−1)~batched, batched~wide) plus
        // the exact oracle against each of the five backends.
        let parallel = self.cells.len() * self.ns.len() * self.starts.len() * 9 * per_parallel_pair;
        let activation = self.cells.len() * self.ns.len() * (1 + self.act_checkpoint_mults.len());
        let dual = self.ns.len();
        // Env section: same four adjacent pairs per schedule, first start
        // only (the unperturbed exact chain does not participate here).
        let env = self.env_specs.len() * self.cells.len() * self.ns.len() * 4 * per_parallel_pair;
        // Deterministic sparse~dense row checks per (cell, n), plus one
        // drift-band envelope check per cell at `drift_n`.
        let oracle = self.cells.len() * self.ns.len() + self.cells.len();
        parallel + activation + dual + env + oracle
    }

    /// Per-test significance level.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    #[must_use]
    pub fn per_test_alpha(&self) -> f64 {
        let n = self.num_checks();
        assert!(n > 0, "empty conformance matrix");
        self.alpha_budget / n as f64
    }
}

/// One KS comparison of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Human-readable label: `cell/n/start backendA~backendB observable`.
    pub name: String,
    /// The KS statistic `D` (NaN if undefined — counted as a failure).
    pub statistic: f64,
    /// The critical value at the per-test level.
    pub critical: f64,
    /// Sample sizes entering the test.
    pub sizes: (usize, usize),
    /// Whether the test accepts (`D ≤ critical`).
    pub pass: bool,
}

fn make_check(name: String, a: &[f64], b: &[f64], alpha: f64) -> Check {
    match ks_statistic(a, b) {
        Some(d) => {
            let critical = ks_critical_value(a.len(), b.len(), alpha);
            Check { name, statistic: d, critical, sizes: (a.len(), b.len()), pass: d <= critical }
        }
        // Fail safe: an undefined statistic (empty or non-finite sample)
        // means the harness itself is broken, never a pass.
        None => Check {
            name,
            statistic: f64::NAN,
            critical: 0.0,
            sizes: (a.len(), b.len()),
            pass: false,
        },
    }
}

/// Derives an independent seed stream per (cell, backend) label so the two
/// samples entering a KS test share no randomness.
fn stream_seed(base: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(base ^ h)
}

fn pair_checks(
    prefix: &str,
    names: (&str, &str),
    samples: (&RunSamples, &RunSamples),
    checkpoints: &[u64],
    unit: &str,
    alpha: f64,
    out: &mut Vec<Check>,
) {
    let (a_name, b_name) = names;
    let (a, b) = samples;
    out.push(make_check(format!("{prefix} {a_name}~{b_name} time"), &a.times, &b.times, alpha));
    for (c, &cp) in checkpoints.iter().enumerate() {
        out.push(make_check(
            format!("{prefix} {a_name}~{b_name} X@{cp}{unit}"),
            &a.marginals[c],
            &b.marginals[c],
            alpha,
        ));
    }
}

/// Runs the whole differential matrix. Deterministic in `seed`; every
/// backend draws from its own derived stream.
#[must_use]
pub fn run_differential(cfg: &ConformConfig, seed: u64) -> Vec<Check> {
    let alpha = cfg.per_test_alpha();
    let mut checks = Vec::with_capacity(cfg.num_checks());

    for cell in &cfg.cells {
        for &n in &cfg.ns {
            let table = cell.table(n);

            // Parallel law: agent ≡ aggregate ≡ partial(n−1) ≡ batched
            // ≡ wide.
            for &start_kind in &cfg.starts {
                let start = start_kind.configuration(n);
                let prefix = format!("{}/n{}/{}", cell.label(), n, start_kind.label());
                let backends = [
                    ParallelBackend::Agent,
                    ParallelBackend::Aggregate,
                    ParallelBackend::PartialFull,
                    ParallelBackend::Batched,
                    ParallelBackend::Wide,
                ];
                let samples: Vec<RunSamples> = backends
                    .iter()
                    .map(|b| {
                        sample_parallel(
                            *b,
                            &table,
                            start,
                            cfg.reps,
                            cfg.budget,
                            &cfg.checkpoints,
                            stream_seed(seed, &format!("{prefix}/{}", b.name())),
                        )
                    })
                    .collect();
                for (i, j) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4)] {
                    pair_checks(
                        &prefix,
                        (backends[i].name(), backends[j].name()),
                        (&samples[i], &samples[j]),
                        &cfg.checkpoints,
                        "r",
                        alpha,
                        &mut checks,
                    );
                }
                // Exact oracle: i.i.d. draws from the sparse chain's exact
                // law against every simulation backend — the one side of
                // these KS tests carries no implementation risk beyond the
                // chain itself, which is gated deterministically below.
                let exact = sample_exact(
                    &table,
                    start,
                    cfg.reps,
                    cfg.budget,
                    &cfg.checkpoints,
                    stream_seed(seed, &format!("{prefix}/exact")),
                );
                for (j, b) in backends.iter().enumerate() {
                    pair_checks(
                        &prefix,
                        ("exact", b.name()),
                        (&exact, &samples[j]),
                        &cfg.checkpoints,
                        "r",
                        alpha,
                        &mut checks,
                    );
                }
            }

            // Deterministic oracle admission: the ε-truncated sparse rows
            // against the dense chain, entry tolerances and tail bounds.
            checks.push(sparse_dense_check(&cell.label(), &table, n, Opinion::One));

            // Environment section: the same five parallel backends under
            // each perturbation schedule, first start only. A backend
            // whose env plumbing desynchronizes (wrong boundary, stale
            // cache after a source flip, perturbing retired replicas)
            // shifts its perturbed law and is caught by the same gates.
            if let Some(&start_kind) = cfg.starts.first() {
                let start = start_kind.configuration(n);
                for spec in &cfg.env_specs {
                    let env: EnvSchedule = spec.parse().expect("valid env spec in config");
                    let prefix =
                        format!("{}/n{}/{}/env[{spec}]", cell.label(), n, start_kind.label());
                    let backends = [
                        ParallelBackend::Agent,
                        ParallelBackend::Aggregate,
                        ParallelBackend::PartialFull,
                        ParallelBackend::Batched,
                        ParallelBackend::Wide,
                    ];
                    let samples: Vec<RunSamples> = backends
                        .iter()
                        .map(|b| {
                            sample_parallel_env(
                                *b,
                                &table,
                                start,
                                cfg.reps,
                                cfg.budget,
                                &cfg.checkpoints,
                                stream_seed(seed, &format!("{prefix}/{}", b.name())),
                                &env,
                            )
                        })
                        .collect();
                    for (i, j) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4)] {
                        pair_checks(
                            &prefix,
                            (backends[i].name(), backends[j].name()),
                            (&samples[i], &samples[j]),
                            &cfg.checkpoints,
                            "r",
                            alpha,
                            &mut checks,
                        );
                    }
                }
            }

            // Per-activation law: sequential ≡ partial(1), from all-wrong,
            // compared in activations.
            let start = StartKind::AllWrong.configuration(n);
            let prefix = format!("{}/n{}/all_wrong", cell.label(), n);
            let act_budget = cfg.budget * n;
            let act_cps: Vec<u64> = cfg.act_checkpoint_mults.iter().map(|m| m * n).collect();
            let seq = sample_activation(
                ActivationBackend::Sequential,
                &table,
                start,
                cfg.reps,
                act_budget,
                &act_cps,
                stream_seed(seed, &format!("{prefix}/sequential")),
            );
            let p1 = sample_activation(
                ActivationBackend::PartialOne,
                &table,
                start,
                cfg.reps,
                act_budget,
                &act_cps,
                stream_seed(seed, &format!("{prefix}/partial(1)")),
            );
            pair_checks(
                &prefix,
                (ActivationBackend::Sequential.name(), ActivationBackend::PartialOne.name()),
                (&seq, &p1),
                &act_cps,
                "a",
                alpha,
                &mut checks,
            );
        }
    }

    // Duality: dual absorption =d forward Voter ℓ=1 consensus from
    // all-wrong, per n.
    for &n in &cfg.ns {
        let table = Cell { kind: ProtocolKind::Voter, ell: 1 }.table(n);
        let start = StartKind::AllWrong.configuration(n);
        let forward = sample_parallel(
            ParallelBackend::Aggregate,
            &table,
            start,
            cfg.reps,
            cfg.budget,
            &[],
            stream_seed(seed, &format!("dual/n{n}/forward")),
        );
        let dual =
            sample_dual(n, cfg.reps, cfg.budget, stream_seed(seed, &format!("dual/n{n}/backward")));
        checks.push(make_check(
            format!("voter(l=1)/n{n}/all_wrong dual~forward time"),
            &dual,
            &forward.times,
            alpha,
        ));
    }

    // Drift-band oracle at large n: wide-engine trajectories inside
    // exact-row envelopes, one check per protocol cell.
    for cell in &cfg.cells {
        let table = cell.table(cfg.drift_n);
        checks.push(drift_band_check(
            &cell.label(),
            &table,
            cfg.drift_n,
            cfg.drift_reps,
            cfg.drift_rounds,
            stream_seed(seed, &format!("drift/{}", cell.label())),
        ));
    }

    debug_assert_eq!(checks.len(), cfg.num_checks(), "check count must match the Bonferroni split");
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ConformConfig {
        ConformConfig {
            scale: ConformScale::Smoke,
            cells: vec![
                Cell { kind: ProtocolKind::Voter, ell: 1 },
                Cell { kind: ProtocolKind::Minority, ell: 3 },
            ],
            ns: vec![16],
            starts: vec![StartKind::AllWrong],
            reps: 60,
            budget: 200,
            checkpoints: vec![1, 2],
            act_checkpoint_mults: vec![1, 2],
            env_specs: vec!["flip@2".to_string()],
            drift_n: 512,
            drift_reps: 6,
            drift_rounds: 6,
            alpha_budget: 1e-9,
        }
    }

    #[test]
    fn check_count_matches_enumeration() {
        for scale in [ConformScale::Smoke, ConformScale::Standard, ConformScale::Full] {
            let cfg = ConformConfig::for_scale(scale);
            let checks = if scale == ConformScale::Smoke {
                // Only the smoke matrix is cheap enough to execute here.
                run_differential(&cfg, 7).len()
            } else {
                cfg.num_checks()
            };
            assert_eq!(checks, cfg.num_checks(), "{}", scale.name());
            assert!(cfg.per_test_alpha() > 0.0);
        }
    }

    #[test]
    fn equivalent_backends_pass_the_tiny_matrix() {
        let cfg = tiny_config();
        let checks = run_differential(&cfg, 42);
        assert_eq!(checks.len(), cfg.num_checks());
        for c in &checks {
            assert!(c.pass, "{}: D={} > {}", c.name, c.statistic, c.critical);
            // The deterministic oracle checks report state/step counts, not
            // replication counts; every KS check uses the full sample.
            if !c.name.contains("sparse~dense") && !c.name.contains("drift-band") {
                assert_eq!(c.sizes, (cfg.reps, cfg.reps), "{}", c.name);
            }
        }
    }

    #[test]
    fn matrix_is_deterministic_in_the_seed() {
        let cfg = tiny_config();
        let a = run_differential(&cfg, 5);
        let b = run_differential(&cfg, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn a_corrupted_backend_is_caught() {
        // Sanity that the gate has teeth: compare the aggregate voter
        // against a *minority* sample under the voter's label. From the
        // all-wrong start the voter converges well inside the budget while
        // minority ℓ=3 is attracted to X/n = 1/2 and censors at the
        // budget, so the time distributions are nearly disjoint and must
        // reject even at the tiny per-test alpha.
        let cfg = tiny_config();
        let alpha = cfg.per_test_alpha();
        let n = 16u64;
        let voter = Cell { kind: ProtocolKind::Voter, ell: 1 }.table(n);
        let minority = Cell { kind: ProtocolKind::Minority, ell: 3 }.table(n);
        let start = StartKind::AllWrong.configuration(n);
        let a = crate::backend::sample_parallel(
            ParallelBackend::Aggregate,
            &voter,
            start,
            200,
            400,
            &[],
            1,
        );
        let b = crate::backend::sample_parallel(
            ParallelBackend::Aggregate,
            &minority,
            start,
            200,
            400,
            &[],
            2,
        );
        let check = make_check("teeth".into(), &a.times, &b.times, alpha);
        assert!(!check.pass, "D={} <= {}", check.statistic, check.critical);
    }

    #[test]
    fn all_engines_share_the_post_flip_law() {
        // A mid-run source flip moves the consensus target; every engine
        // must follow the same *post-flip* law. Checkpoints at 5, 8 and
        // 16 sit strictly after the flip at t = 3, so the marginal
        // comparisons here have power against an engine that serves a
        // stale pre-flip kernel or misses the boundary convention.
        let n = 20u64;
        let table = Cell { kind: ProtocolKind::Voter, ell: 1 }.table(n);
        let start = StartKind::Half.configuration(n);
        let env: EnvSchedule = "flip@3".parse().unwrap();
        let checkpoints = [5u64, 8, 16];
        let backends = [
            ParallelBackend::Agent,
            ParallelBackend::Aggregate,
            ParallelBackend::PartialFull,
            ParallelBackend::Batched,
            ParallelBackend::Wide,
        ];
        let samples: Vec<crate::backend::RunSamples> = backends
            .iter()
            .map(|b| {
                crate::backend::sample_parallel_env(
                    *b,
                    &table,
                    start,
                    150,
                    600,
                    &checkpoints,
                    stream_seed(33, &format!("postflip/{}", b.name())),
                    &env,
                )
            })
            .collect();
        // All 10 unordered pairs, 4 observables each, Bonferroni-tight.
        let alpha = 1e-9 / 40.0;
        let mut checks = Vec::new();
        for i in 0..backends.len() {
            for j in (i + 1)..backends.len() {
                pair_checks(
                    "postflip",
                    (backends[i].name(), backends[j].name()),
                    (&samples[i], &samples[j]),
                    &checkpoints,
                    "r",
                    alpha,
                    &mut checks,
                );
            }
        }
        assert_eq!(checks.len(), 40);
        for c in &checks {
            assert!(c.pass, "{}: D={} > {}", c.name, c.statistic, c.critical);
        }
    }

    #[test]
    fn undefined_statistic_fails_safe() {
        let c = make_check("broken".into(), &[], &[1.0], 0.01);
        assert!(!c.pass);
        assert!(c.statistic.is_nan());
    }

    #[test]
    fn scale_parsing_round_trips() {
        use std::str::FromStr;
        for scale in [ConformScale::Smoke, ConformScale::Standard, ConformScale::Full] {
            assert_eq!(ConformScale::from_str(scale.name()), Ok(scale));
        }
        assert!(ConformScale::from_str("galactic").is_err());
    }
}
