//! Uniform sampling drivers over the simulator backends.
//!
//! Every driver takes the same `(table, start, reps, budget, seed)` grid
//! cell and returns, per replication, the censored consensus time plus the
//! state `X_t` at a fixed set of early checkpoints — the two observables
//! the differential harness compares across backends. Replication `rep`
//! always derives its RNG from `replication_seed(seed, rep)`, so a cell is
//! reproducible in isolation; callers give each backend a *distinct* base
//! seed so the two samples entering a KS test are independent.

use std::sync::Arc;

use bitdissem_core::{Configuration, GTable};
use bitdissem_sim::agent::AgentSim;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::batched::BatchedAggregateSim;
use bitdissem_sim::dual::CoalescingDual;
use bitdissem_sim::env::EnvSchedule;
use bitdissem_sim::partial::PartialSim;
use bitdissem_sim::rng::{replication_seed, rng_from, SimRng};
use bitdissem_sim::run::Simulator;
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_sim::wide::WideBatchedSim;

/// A backend of the *parallel* law: all `n − 1` non-source agents update
/// each round. The five are distributionally identical by construction
/// (the aggregate chain is the exact conditional law of the agent
/// simulator; `m = n − 1` partial synchrony is one full round per step;
/// the batched engine steps the aggregate chain lock-step with per-replica
/// index-derived streams; the wide engine steps it on counter-based
/// streams with fused convolution draws).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelBackend {
    /// The literal agent-level simulator (ground truth).
    Agent,
    /// The aggregate exact chain (two binomials per round).
    Aggregate,
    /// [`PartialSim`] with a full batch `m = n − 1`.
    PartialFull,
    /// [`BatchedAggregateSim`]: all replications of the cell advance
    /// lock-step through a shared compiled kernel.
    Batched,
    /// [`WideBatchedSim`]: the counter-rng lane engine. Same law, but a
    /// different randomness stream than every other backend, so its
    /// admission rests on these KS gates rather than bit equality.
    Wide,
}

impl ParallelBackend {
    /// Display name used in check labels and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ParallelBackend::Agent => "agent",
            ParallelBackend::Aggregate => "aggregate",
            ParallelBackend::PartialFull => "partial(n-1)",
            ParallelBackend::Batched => "batched",
            ParallelBackend::Wide => "wide",
        }
    }
}

/// A backend of the *per-activation* law: one uniformly random non-source
/// agent updates per step. Compared in **activations**, never rounds — the
/// two backends normalize rounds differently (`n` activations per
/// [`Simulator::step_round`] for the sequential simulator, `n − 1` steps
/// per round for `PartialSim(m = 1)`), so a round-based comparison would
/// reject two correct implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationBackend {
    /// The sequential-setting simulator.
    Sequential,
    /// [`PartialSim`] with a singleton batch `m = 1`.
    PartialOne,
}

impl ActivationBackend {
    /// Display name used in check labels and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ActivationBackend::Sequential => "sequential",
            ActivationBackend::PartialOne => "partial(1)",
        }
    }
}

/// The observables a driver collects for one grid cell: `marginals[c]`
/// holds the `reps` values of `X_t` at the `c`-th checkpoint, and `times`
/// the `reps` right-censored consensus times (in rounds or activations,
/// matching the driver).
#[derive(Debug, Clone)]
pub struct RunSamples {
    /// One vector per checkpoint, each of length `reps`.
    pub marginals: Vec<Vec<f64>>,
    /// Censored consensus times, one per replication.
    pub times: Vec<f64>,
}

/// Advances one replication to consensus or `budget` time units, recording
/// `X_t` at each checkpoint. `step` advances the simulation by one time
/// unit; consensus is absorbing for the protocols under test (Prop. 3), so
/// once reached the state is held without further stepping.
fn run_one<S, F>(
    sim: &mut S,
    rng: &mut SimRng,
    budget: u64,
    checkpoints: &[u64],
    mut step: F,
) -> (Vec<u64>, u64)
where
    S: ?Sized,
    F: FnMut(&mut S, &mut SimRng) -> Configuration,
    S: HasConfiguration,
{
    let mut marginals = Vec::with_capacity(checkpoints.len());
    let mut converged_at: Option<u64> = None;
    let last_cp = checkpoints.last().copied().unwrap_or(0);
    let mut config = sim.current_configuration();
    for t in 0..=budget {
        if converged_at.is_none() && config.is_correct_consensus() {
            converged_at = Some(t);
        }
        if checkpoints.contains(&t) {
            marginals.push(config.ones());
        }
        if t == budget || (converged_at.is_some() && t >= last_cp) {
            break;
        }
        if converged_at.is_none() {
            config = step(sim, rng);
        }
        // Once absorbed the configuration is constant; later checkpoints
        // reuse it without burning randomness.
    }
    (marginals, converged_at.unwrap_or(budget))
}

/// Internal accessor so [`run_one`] works over both trait objects and the
/// activation-level wrapper.
trait HasConfiguration {
    fn current_configuration(&self) -> Configuration;
}

impl HasConfiguration for dyn Simulator + '_ {
    fn current_configuration(&self) -> Configuration {
        self.configuration()
    }
}

/// Samples `reps` replications of `backend` on the parallel law. Times and
/// checkpoints are in rounds.
///
/// # Panics
///
/// Panics if the table cannot be materialized for `start.n()` (invalid
/// grid cell).
#[must_use]
pub fn sample_parallel(
    backend: ParallelBackend,
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
) -> RunSamples {
    if backend == ParallelBackend::Batched {
        return sample_parallel_batched(table, start, reps, budget, checkpoints, seed);
    }
    if backend == ParallelBackend::Wide {
        return sample_parallel_wide(table, start, reps, budget, checkpoints, seed);
    }
    let mut marginals = vec![Vec::with_capacity(reps); checkpoints.len()];
    let mut times = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(seed, rep as u64));
        let mut sim: Box<dyn Simulator> = match backend {
            ParallelBackend::Agent => {
                Box::new(AgentSim::new(table, start).expect("valid grid cell"))
            }
            ParallelBackend::Aggregate => {
                Box::new(AggregateSim::new(table, start).expect("valid grid cell"))
            }
            ParallelBackend::PartialFull => {
                Box::new(PartialSim::new(table, start, start.n() - 1).expect("valid grid cell"))
            }
            ParallelBackend::Batched | ParallelBackend::Wide => unreachable!("handled above"),
        };
        let (ms, time) = run_one(&mut *sim, &mut rng, budget, checkpoints, |s, rng| {
            s.step_round(rng);
            s.configuration()
        });
        for (slot, m) in marginals.iter_mut().zip(ms) {
            slot.push(m as f64);
        }
        times.push(time as f64);
    }
    RunSamples { marginals, times }
}

/// The [`ParallelBackend::Batched`] driver: one lock-step batch holds all
/// `reps` replications of the cell, and the observables are read from the
/// batch as its shared clock passes each checkpoint. Mirrors [`run_one`]'s
/// conventions exactly — consensus is checked at `t` before stepping, a
/// converged replication holds its absorbed state for later checkpoints
/// without burning randomness (the engine retires it), and times are
/// right-censored at `budget`.
fn sample_parallel_batched(
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
) -> RunSamples {
    let kernel = Arc::new(table.compile().expect("valid grid cell"));
    let seeds: Vec<u64> = (0..reps).map(|rep| replication_seed(seed, rep as u64)).collect();
    let mut batch = BatchedAggregateSim::new(kernel, start, &seeds);

    let last_cp = checkpoints.last().copied().unwrap_or(0);
    // Rows are filled in visit order; checkpoints beyond the budget leave
    // their row empty, the same shape the per-replication drivers produce.
    let mut marginals = vec![Vec::new(); checkpoints.len()];
    let mut next_row = 0;
    let mut t: u64 = 0;
    loop {
        if checkpoints.contains(&t) {
            marginals[next_row] = (0..reps).map(|rep| batch.ones_of(rep) as f64).collect();
            next_row += 1;
        }
        if t == budget || (batch.live() == 0 && t >= last_cp) {
            break;
        }
        if batch.live() > 0 {
            batch.step_round();
        }
        t += 1;
    }
    let times =
        (0..reps).map(|rep| batch.converged_at(rep).unwrap_or(budget) as f64).collect::<Vec<_>>();
    RunSamples { marginals, times }
}

/// The [`ParallelBackend::Wide`] driver: the counter-rng lane engine over
/// the same checkpoint/censoring conventions as
/// [`sample_parallel_batched`]. Replication `rep` draws from the counter
/// stream `replication_seed(seed, rep)` — reproducible in isolation, but
/// *not* the byte stream the other backends consume, which is exactly why
/// this backend exists: the harness KS-gates its law against theirs.
fn sample_parallel_wide(
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
) -> RunSamples {
    let kernel = Arc::new(table.compile().expect("valid grid cell"));
    let streams: Vec<u64> = (0..reps).map(|rep| replication_seed(seed, rep as u64)).collect();
    let mut batch = WideBatchedSim::new(kernel, start, &streams);

    let last_cp = checkpoints.last().copied().unwrap_or(0);
    let mut marginals = vec![Vec::new(); checkpoints.len()];
    let mut next_row = 0;
    let mut t: u64 = 0;
    loop {
        if checkpoints.contains(&t) {
            marginals[next_row] = (0..reps).map(|rep| batch.ones_of(rep) as f64).collect();
            next_row += 1;
        }
        if t == budget || (batch.live() == 0 && t >= last_cp) {
            break;
        }
        if batch.live() > 0 {
            batch.step_round();
        }
        t += 1;
    }
    let times =
        (0..reps).map(|rep| batch.converged_at(rep).unwrap_or(budget) as f64).collect::<Vec<_>>();
    RunSamples { marginals, times }
}

/// [`run_one`] under an environment schedule: the correct consensus is no
/// longer absorbing, so the simulation keeps stepping (perturb at the
/// boundary, then one round — the engine-wide convention of DESIGN
/// decision 15) until the first consensus hit has been seen *and* every
/// checkpoint is recorded. The marginal at a checkpoint is the
/// **pre-perturbation** state at that boundary, and `times` hold the
/// first boundary at which the correct consensus held, right-censored at
/// `budget`.
fn run_one_env(
    sim: &mut dyn Simulator,
    rng: &mut SimRng,
    budget: u64,
    checkpoints: &[u64],
    env: &EnvSchedule,
) -> (Vec<u64>, u64) {
    let mut marginals = Vec::with_capacity(checkpoints.len());
    let mut converged_at: Option<u64> = None;
    let last_cp = checkpoints.last().copied().unwrap_or(0);
    for t in 0..=budget {
        let config = sim.configuration();
        if converged_at.is_none() && config.is_correct_consensus() {
            converged_at = Some(t);
        }
        if checkpoints.contains(&t) {
            marginals.push(config.ones());
        }
        if t == budget || (converged_at.is_some() && t >= last_cp) {
            break;
        }
        sim.perturb(env, t, rng);
        sim.step_round(rng);
    }
    (marginals, converged_at.unwrap_or(budget))
}

/// [`sample_parallel`] under an environment schedule. Same grid cell, same
/// observables, but the schedule's perturbations are injected at every
/// round boundary on all five backends; the lock-step engines run in
/// no-retire mode so replicas keep stepping past their first consensus
/// (it is not absorbing once the environment can disrupt it).
///
/// # Panics
///
/// Panics if the table cannot be materialized for `start.n()` (invalid
/// grid cell).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn sample_parallel_env(
    backend: ParallelBackend,
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
    env: &EnvSchedule,
) -> RunSamples {
    if env.is_inert() {
        return sample_parallel(backend, table, start, reps, budget, checkpoints, seed);
    }
    match backend {
        ParallelBackend::Batched => {
            return sample_lockstep_env(
                LockstepEnv::Batched,
                table,
                start,
                reps,
                budget,
                checkpoints,
                seed,
                env,
            )
        }
        ParallelBackend::Wide => {
            return sample_lockstep_env(
                LockstepEnv::Wide,
                table,
                start,
                reps,
                budget,
                checkpoints,
                seed,
                env,
            )
        }
        _ => {}
    }
    let mut marginals = vec![Vec::with_capacity(reps); checkpoints.len()];
    let mut times = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(seed, rep as u64));
        let mut sim: Box<dyn Simulator> = match backend {
            ParallelBackend::Agent => {
                Box::new(AgentSim::new(table, start).expect("valid grid cell"))
            }
            ParallelBackend::Aggregate => {
                Box::new(AggregateSim::new(table, start).expect("valid grid cell"))
            }
            ParallelBackend::PartialFull => {
                Box::new(PartialSim::new(table, start, start.n() - 1).expect("valid grid cell"))
            }
            ParallelBackend::Batched | ParallelBackend::Wide => unreachable!("handled above"),
        };
        let (ms, time) = run_one_env(&mut *sim, &mut rng, budget, checkpoints, env);
        for (slot, m) in marginals.iter_mut().zip(ms) {
            slot.push(m as f64);
        }
        times.push(time as f64);
    }
    RunSamples { marginals, times }
}

enum LockstepEnv {
    Batched,
    Wide,
}

/// The lock-step engine surface the env driver needs; both engines expose
/// it with identical semantics (no-retire construction keeps every
/// replica live, `converged_at` preserves the first hit).
trait LockstepBatch {
    fn ones_of(&self, rep: usize) -> u64;
    fn converged_at(&self, rep: usize) -> Option<u64>;
    fn perturb_round(&mut self, env: &EnvSchedule) -> u64;
    fn step_round(&mut self);
}

impl LockstepBatch for BatchedAggregateSim {
    fn ones_of(&self, rep: usize) -> u64 {
        BatchedAggregateSim::ones_of(self, rep)
    }
    fn converged_at(&self, rep: usize) -> Option<u64> {
        BatchedAggregateSim::converged_at(self, rep)
    }
    fn perturb_round(&mut self, env: &EnvSchedule) -> u64 {
        BatchedAggregateSim::perturb_round(self, env)
    }
    fn step_round(&mut self) {
        BatchedAggregateSim::step_round(self);
    }
}

impl LockstepBatch for WideBatchedSim {
    fn ones_of(&self, rep: usize) -> u64 {
        WideBatchedSim::ones_of(self, rep)
    }
    fn converged_at(&self, rep: usize) -> Option<u64> {
        WideBatchedSim::converged_at(self, rep)
    }
    fn perturb_round(&mut self, env: &EnvSchedule) -> u64 {
        WideBatchedSim::perturb_round(self, env)
    }
    fn step_round(&mut self) {
        WideBatchedSim::step_round(self);
    }
}

/// The lock-step env driver shared by the batched and wide backends:
/// no-retire construction, perturb-then-step at every boundary, and
/// [`run_one_env`]'s exact observation conventions. With the same base
/// seed the batched variant is bit-identical to the aggregate backend
/// (`batched_env_backend_is_bit_identical_to_aggregate` pins this); the
/// wide variant draws from counter streams and is admitted by the KS
/// gates only.
#[allow(clippy::too_many_arguments)]
fn sample_lockstep_env(
    which: LockstepEnv,
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
    env: &EnvSchedule,
) -> RunSamples {
    let kernel = Arc::new(table.compile().expect("valid grid cell"));
    let streams: Vec<u64> = (0..reps).map(|rep| replication_seed(seed, rep as u64)).collect();
    let mut batch: Box<dyn LockstepBatch> = match which {
        LockstepEnv::Batched => {
            Box::new(BatchedAggregateSim::with_retirement(kernel, start, &streams, false))
        }
        LockstepEnv::Wide => {
            Box::new(WideBatchedSim::with_mode(kernel, start, &streams, false, false))
        }
    };

    let last_cp = checkpoints.last().copied().unwrap_or(0);
    let mut marginals = vec![Vec::new(); checkpoints.len()];
    let mut next_row = 0;
    let mut t: u64 = 0;
    loop {
        if checkpoints.contains(&t) {
            marginals[next_row] = (0..reps).map(|rep| batch.ones_of(rep) as f64).collect();
            next_row += 1;
        }
        let all_hit = (0..reps).all(|rep| batch.converged_at(rep).is_some());
        if t == budget || (all_hit && t >= last_cp) {
            break;
        }
        batch.perturb_round(env);
        batch.step_round();
        t += 1;
    }
    let times =
        (0..reps).map(|rep| batch.converged_at(rep).unwrap_or(budget) as f64).collect::<Vec<_>>();
    RunSamples { marginals, times }
}

enum ActSim {
    Seq(SequentialSim),
    Part(PartialSim),
}

impl HasConfiguration for ActSim {
    fn current_configuration(&self) -> Configuration {
        match self {
            ActSim::Seq(s) => s.configuration(),
            ActSim::Part(s) => s.configuration(),
        }
    }
}

impl ActSim {
    fn step_activation(&mut self, rng: &mut SimRng) -> Configuration {
        match self {
            ActSim::Seq(s) => {
                s.step_activation(rng);
                s.configuration()
            }
            ActSim::Part(s) => {
                s.step_batch(rng);
                s.configuration()
            }
        }
    }
}

/// Samples `reps` replications of `backend` on the per-activation law.
/// Times and checkpoints are in **activations**.
///
/// # Panics
///
/// Panics if the table cannot be materialized for `start.n()` (invalid
/// grid cell).
#[must_use]
pub fn sample_activation(
    backend: ActivationBackend,
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget_activations: u64,
    checkpoints: &[u64],
    seed: u64,
) -> RunSamples {
    let mut marginals = vec![Vec::with_capacity(reps); checkpoints.len()];
    let mut times = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(seed, rep as u64));
        let mut sim = match backend {
            ActivationBackend::Sequential => {
                ActSim::Seq(SequentialSim::new(table, start).expect("valid grid cell"))
            }
            ActivationBackend::PartialOne => {
                ActSim::Part(PartialSim::new(table, start, 1).expect("valid grid cell"))
            }
        };
        let (ms, time) =
            run_one(&mut sim, &mut rng, budget_activations, checkpoints, ActSim::step_activation);
        for (slot, m) in marginals.iter_mut().zip(ms) {
            slot.push(m as f64);
        }
        times.push(time as f64);
    }
    RunSamples { marginals, times }
}

/// Samples `reps` absorption times of the Voter `ℓ = 1` coalescing dual on
/// `n` agents, right-censored at `budget` backward rounds. By the duality
/// of Appendix B this is the distribution of the forward Voter consensus
/// time from the all-wrong start.
#[must_use]
pub fn sample_dual(n: u64, reps: usize, budget: u64, seed: u64) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            let mut rng = rng_from(replication_seed(seed, rep as u64));
            let mut dual = CoalescingDual::new(n);
            dual.run_to_absorption(&mut rng, budget).unwrap_or(budget) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::Voter;
    use bitdissem_core::{Opinion, ProtocolExt};

    fn voter_table(n: u64) -> GTable {
        Voter::new(1).unwrap().to_table(n).unwrap()
    }

    #[test]
    fn parallel_driver_shapes_and_determinism() {
        let table = voter_table(16);
        let start = Configuration::all_wrong(16, Opinion::One);
        let a = sample_parallel(ParallelBackend::Aggregate, &table, start, 5, 500, &[1, 2, 4], 9);
        assert_eq!(a.marginals.len(), 3);
        assert!(a.marginals.iter().all(|m| m.len() == 5));
        assert_eq!(a.times.len(), 5);
        // X_1 ≥ 1 always (the source), and each marginal is ≤ n.
        assert!(a.marginals[0].iter().all(|&x| (1.0..=16.0).contains(&x)));
        let b = sample_parallel(ParallelBackend::Aggregate, &table, start, 5, 500, &[1, 2, 4], 9);
        assert_eq!(a.times, b.times);
        assert_eq!(a.marginals, b.marginals);
    }

    #[test]
    fn all_parallel_backends_run_the_same_cell() {
        let table = voter_table(12);
        let start = Configuration::all_wrong(12, Opinion::One);
        for backend in [
            ParallelBackend::Agent,
            ParallelBackend::Aggregate,
            ParallelBackend::PartialFull,
            ParallelBackend::Batched,
            ParallelBackend::Wide,
        ] {
            let s = sample_parallel(backend, &table, start, 3, 2000, &[1], 4);
            assert_eq!(s.times.len(), 3, "{}", backend.name());
            assert!(s.times.iter().all(|&t| t <= 2000.0));
        }
    }

    #[test]
    fn batched_backend_is_bit_identical_to_aggregate() {
        // Stronger than the KS gate: with the *same* base seed the batched
        // driver must reproduce the aggregate driver's samples exactly —
        // both observables, every replication, both starts.
        use bitdissem_core::dynamics::Minority;
        let n = 20u64;
        for table in [voter_table(n), Minority::new(3).unwrap().to_table(n).unwrap()] {
            for start in [
                Configuration::all_wrong(n, Opinion::One),
                Configuration::new(n, Opinion::One, n / 2).unwrap(),
            ] {
                let agg = sample_parallel(
                    ParallelBackend::Aggregate,
                    &table,
                    start,
                    40,
                    600,
                    &[1, 2, 4],
                    77,
                );
                let bat = sample_parallel(
                    ParallelBackend::Batched,
                    &table,
                    start,
                    40,
                    600,
                    &[1, 2, 4],
                    77,
                );
                assert_eq!(agg.times, bat.times);
                assert_eq!(agg.marginals, bat.marginals);
            }
        }
    }

    #[test]
    fn batched_backend_handles_consensus_start() {
        let table = voter_table(10);
        let start = Configuration::correct_consensus(10, Opinion::One);
        let s = sample_parallel(ParallelBackend::Batched, &table, start, 2, 50, &[1, 4], 1);
        assert!(s.times.iter().all(|&t| t == 0.0));
        assert!(s.marginals.iter().flatten().all(|&x| x == 10.0));
    }

    #[test]
    fn wide_backend_handles_consensus_start() {
        let table = voter_table(10);
        let start = Configuration::correct_consensus(10, Opinion::One);
        let s = sample_parallel(ParallelBackend::Wide, &table, start, 2, 50, &[1, 4], 1);
        assert!(s.times.iter().all(|&t| t == 0.0));
        assert!(s.marginals.iter().flatten().all(|&x| x == 10.0));
    }

    #[test]
    fn activation_driver_counts_activations_not_rounds() {
        let table = voter_table(8);
        let start = Configuration::all_wrong(8, Opinion::One);
        for backend in [ActivationBackend::Sequential, ActivationBackend::PartialOne] {
            let s = sample_activation(backend, &table, start, 4, 5000, &[8, 16], 3);
            assert_eq!(s.marginals.len(), 2);
            assert_eq!(s.times.len(), 4);
            // The budget is in activations: a censored value sits at 5000,
            // far beyond any plausible round count for n = 8.
            assert!(s.times.iter().all(|&t| t <= 5000.0));
        }
    }

    #[test]
    fn dual_times_are_positive_and_deterministic() {
        let a = sample_dual(16, 6, 100_000, 7);
        let b = sample_dual(16, 6, 100_000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn env_backends_run_the_same_cell_and_are_deterministic() {
        let table = voter_table(12);
        let start = Configuration::all_wrong(12, Opinion::One);
        let env: EnvSchedule = "flip@2,noise:0.01".parse().unwrap();
        for backend in [
            ParallelBackend::Agent,
            ParallelBackend::Aggregate,
            ParallelBackend::PartialFull,
            ParallelBackend::Batched,
            ParallelBackend::Wide,
        ] {
            let a = sample_parallel_env(backend, &table, start, 4, 800, &[1, 4], 5, &env);
            assert_eq!(a.marginals.len(), 2, "{}", backend.name());
            assert!(a.marginals.iter().all(|m| m.len() == 4));
            assert_eq!(a.times.len(), 4);
            assert!(a.times.iter().all(|&t| t <= 800.0));
            let b = sample_parallel_env(backend, &table, start, 4, 800, &[1, 4], 5, &env);
            assert_eq!(a.times, b.times, "{}", backend.name());
            assert_eq!(a.marginals, b.marginals, "{}", backend.name());
        }
    }

    #[test]
    fn batched_env_backend_is_bit_identical_to_aggregate() {
        // The env drivers share the perturb-then-step boundary and RNG
        // conventions, so with the same base seed the batched lock-step
        // driver must reproduce the aggregate driver's perturbed samples
        // exactly.
        let n = 20u64;
        let table = voter_table(n);
        let env: EnvSchedule = "flip@3,noise:0.02".parse().unwrap();
        for start in [
            Configuration::all_wrong(n, Opinion::One),
            Configuration::new(n, Opinion::One, n / 2).unwrap(),
        ] {
            let agg = sample_parallel_env(
                ParallelBackend::Aggregate,
                &table,
                start,
                30,
                500,
                &[1, 4, 8],
                91,
                &env,
            );
            let bat = sample_parallel_env(
                ParallelBackend::Batched,
                &table,
                start,
                30,
                500,
                &[1, 4, 8],
                91,
                &env,
            );
            assert_eq!(agg.times, bat.times);
            assert_eq!(agg.marginals, bat.marginals);
        }
    }

    #[test]
    fn inert_env_matches_the_static_sampler() {
        let table = voter_table(16);
        let start = Configuration::all_wrong(16, Opinion::One);
        let env = EnvSchedule::default();
        for backend in [ParallelBackend::Aggregate, ParallelBackend::Wide] {
            let s = sample_parallel(backend, &table, start, 5, 300, &[1, 2], 3);
            let e = sample_parallel_env(backend, &table, start, 5, 300, &[1, 2], 3, &env);
            assert_eq!(s.times, e.times, "{}", backend.name());
            assert_eq!(s.marginals, e.marginals, "{}", backend.name());
        }
    }

    #[test]
    fn env_flip_moves_the_consensus_target() {
        // Start at the correct consensus; flip the source at t = 2. The
        // old consensus no longer counts, so the recorded first hit must
        // be the boundary-0 hit, while a late checkpoint finds the state
        // migrated toward the *new* target (all zeros).
        let table = voter_table(16);
        let start = Configuration::correct_consensus(16, Opinion::One);
        let env: EnvSchedule = "flip@2".parse().unwrap();
        let s = sample_parallel_env(
            ParallelBackend::Aggregate,
            &table,
            start,
            6,
            4_000,
            &[1, 3_000],
            11,
            &env,
        );
        assert!(s.times.iter().all(|&t| t == 0.0), "pre-flip consensus is the first hit");
        assert!(s.marginals[0].iter().all(|&x| x == 16.0));
        // Voter from one-off-consensus re-converges to the flipped target
        // well inside 3000 rounds for n = 16 in the typical replication.
        assert!(
            s.marginals[1].iter().filter(|&&x| x == 0.0).count() >= 4,
            "most replications should sit at the new all-zero consensus: {:?}",
            s.marginals[1]
        );
    }

    #[test]
    fn consensus_start_reports_time_zero_and_full_marginals() {
        let table = voter_table(10);
        let start = Configuration::correct_consensus(10, Opinion::One);
        let s = sample_parallel(ParallelBackend::Aggregate, &table, start, 2, 50, &[1, 4], 1);
        assert!(s.times.iter().all(|&t| t == 0.0));
        // Absorbed at n for every checkpoint.
        assert!(s.marginals.iter().flatten().all(|&x| x == 10.0));
    }
}
