//! Differential conformance for the bitdissem simulator family.
//!
//! The repository implements the same stochastic process five times over —
//! the literal agent-level simulator, the aggregate exact chain, the
//! sequential simulator, the partial-synchrony interpolation, and the
//! Voter dual process — precisely so that bugs in one implementation
//! cannot hide: the paper's law equivalences make the backends *mutually
//! checking*. This crate turns that redundancy into an executable gate:
//!
//! * [`differential`] drives all backends from identical
//!   `(protocol, n, X₀, seed-schedule)` grids and compares, per grid cell,
//!   the per-round marginals `X_r` and the consensus-time distributions
//!   with two-sample Kolmogorov–Smirnov tests. The comparisons rest on
//!   exact equalities:
//!   - `AgentSim ≡ AggregateSim ≡ PartialSim(m = n−1)` in the *parallel*
//!     law (one round = all non-source agents update);
//!   - `SequentialSim ≡ PartialSim(m = 1)` in the *per-activation* law
//!     (compared in activations — the round normalizations differ);
//!   - the [`CoalescingDual`](bitdissem_sim::dual::CoalescingDual)
//!     absorption time equals in distribution the forward Voter `ℓ = 1`
//!     consensus time from the all-wrong start (Appendix B duality).
//!
//!   All tests share one false-alarm budget, Bonferroni-split across the
//!   matrix, so a full run's probability of any spurious failure is
//!   bounded by the budget (KS on discrete data is conservative).
//! * [`oracle`] admits the exact Markov chain as a *reference backend*:
//!   i.i.d. draws from the exact law for the KS matrix, a deterministic
//!   sparse~dense row comparison at small `n`, and Proposition-5-style
//!   drift-band envelopes that gate the wide engine at `n` in the
//!   thousands, where replicated KS comparison is infeasible.
//! * [`fault`] injects I/O failures — torn lines, short writes, transient
//!   `Interrupted`/`WouldBlock` errors, a mid-batch kill — into the
//!   checkpoint path via [`bitdissem_obs::FaultyWriter`], then proves a
//!   `--resume` recovers bit-identically to an undisturbed run.
//! * [`report`] serializes the outcome as a versioned
//!   `CONFORM_<label>.json` next to the benchmark baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod differential;
pub mod fault;
pub mod oracle;
pub mod report;

pub use differential::{
    run_differential, Cell, Check, ConformConfig, ConformScale, ProtocolKind, StartKind,
};
pub use fault::{run_fault_scenarios, FaultCheck};
pub use oracle::{drift_band_check, sample_exact, sparse_dense_check};
pub use report::{ConformReport, CONFORM_SCHEMA_VERSION};
