//! Versioned conformance reports (`CONFORM_<label>.json`).
//!
//! The report lives next to the `BENCH_*.json` baselines and follows the
//! same conventions: a schema version for forward compatibility, a label
//! naming the run, and enough detail per check to diagnose a failure from
//! the artifact alone (statistic, critical value, sample sizes). Writes
//! are atomic ([`bitdissem_obs::durable::atomic_replace`]) so a crashed
//! run never leaves a torn report for CI to misparse.

use std::path::{Path, PathBuf};

use bitdissem_obs::durable::atomic_replace;
use bitdissem_obs::json::{self, Value};

use crate::differential::Check;
use crate::fault::FaultCheck;

/// Schema version of the report format. Bump on breaking layout changes.
pub const CONFORM_SCHEMA_VERSION: u64 = 1;

/// The serialized outcome of one `bitdissem conform` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformReport {
    /// Report format version ([`CONFORM_SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Run label (file name suffix).
    pub label: String,
    /// Scale preset the matrix ran at.
    pub scale: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Total KS false-alarm budget the matrix was gated at.
    pub alpha_budget: f64,
    /// Every differential check performed.
    pub checks: Vec<Check>,
    /// Every fault scenario performed (empty if skipped).
    pub faults: Vec<FaultCheck>,
}

impl ConformReport {
    /// Whether the whole run passed: every KS check accepted and every
    /// fault scenario resumed bit-identically.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass) && self.faults.iter().all(|f| f.pass)
    }

    /// `(failed differential checks, failed fault scenarios)`.
    #[must_use]
    pub fn failures(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|c| !c.pass).count(),
            self.faults.iter().filter(|f| !f.pass).count(),
        )
    }

    /// Serializes the report to its JSON object form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let checks = self
            .checks
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("statistic".to_string(), Value::Num(c.statistic)),
                    ("critical".to_string(), Value::Num(c.critical)),
                    (
                        "sizes".to_string(),
                        Value::Arr(vec![
                            Value::Int(c.sizes.0 as i128),
                            Value::Int(c.sizes.1 as i128),
                        ]),
                    ),
                    ("pass".to_string(), Value::Bool(c.pass)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("scenario".to_string(), Value::Str(f.scenario.clone())),
                    ("pass".to_string(), Value::Bool(f.pass)),
                    ("detail".to_string(), Value::Str(f.detail.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema_version".to_string(), Value::Int(i128::from(self.schema_version))),
            ("label".to_string(), Value::Str(self.label.clone())),
            ("scale".to_string(), Value::Str(self.scale.clone())),
            ("seed".to_string(), Value::Int(i128::from(self.seed))),
            ("alpha_budget".to_string(), Value::Num(self.alpha_budget)),
            ("pass".to_string(), Value::Bool(self.pass())),
            ("checks".to_string(), Value::Arr(checks)),
            ("faults".to_string(), Value::Arr(faults)),
        ])
        .render()
    }

    /// Parses a report from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON or the layout does
    /// not match the schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema_version =
            v.get("schema_version").and_then(Value::as_u64).ok_or("missing schema_version")?;
        let label = v.get("label").and_then(Value::as_str).ok_or("missing label")?.to_string();
        let scale = v.get("scale").and_then(Value::as_str).ok_or("missing scale")?.to_string();
        let seed = v.get("seed").and_then(Value::as_u64).ok_or("missing seed")?;
        let alpha_budget =
            v.get("alpha_budget").and_then(Value::as_f64).ok_or("missing alpha_budget")?;
        let checks = match v.get("checks") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|c| {
                    let name =
                        c.get("name").and_then(Value::as_str).ok_or("check: missing name")?;
                    let sizes = match c.get("sizes") {
                        Some(Value::Arr(s)) if s.len() == 2 => (
                            s[0].as_u64().ok_or("check: bad sizes")? as usize,
                            s[1].as_u64().ok_or("check: bad sizes")? as usize,
                        ),
                        _ => return Err("check: missing sizes".to_string()),
                    };
                    Ok(Check {
                        name: name.to_string(),
                        // A non-finite statistic serializes as null; map it
                        // back to NaN (the fail-safe marker).
                        statistic: c.get("statistic").and_then(Value::as_f64).unwrap_or(f64::NAN),
                        critical: c
                            .get("critical")
                            .and_then(Value::as_f64)
                            .ok_or("check: missing critical")?,
                        sizes,
                        pass: c
                            .get("pass")
                            .and_then(Value::as_bool)
                            .ok_or("check: missing pass")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing checks".to_string()),
        };
        let faults = match v.get("faults") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|f| {
                    Ok(FaultCheck {
                        scenario: f
                            .get("scenario")
                            .and_then(Value::as_str)
                            .ok_or("fault: missing scenario")?
                            .to_string(),
                        pass: f
                            .get("pass")
                            .and_then(Value::as_bool)
                            .ok_or("fault: missing pass")?,
                        detail: f
                            .get("detail")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing faults".to_string()),
        };
        Ok(ConformReport { schema_version, label, scale, seed, alpha_budget, checks, faults })
    }

    /// Writes the report atomically as `CONFORM_<label>.json` under `dir`,
    /// returning the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic write.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("CONFORM_{}.json", self.label));
        atomic_replace(&path, self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Loads a report from disk.
    ///
    /// # Errors
    ///
    /// Returns a message if the file is unreadable or does not parse.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Human-readable summary, one line per failed check plus totals.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance matrix: {} checks, {} fault scenarios (scale {}, seed {}, alpha {:.1e})\n",
            self.checks.len(),
            self.faults.len(),
            self.scale,
            self.seed,
            self.alpha_budget,
        ));
        for c in self.checks.iter().filter(|c| !c.pass) {
            out.push_str(&format!(
                "  FAIL {:<55} D={:.4} > {:.4} (n={}, {})\n",
                c.name, c.statistic, c.critical, c.sizes.0, c.sizes.1
            ));
        }
        for f in &self.faults {
            out.push_str(&format!(
                "  {} fault {:<22} {}\n",
                if f.pass { "ok  " } else { "FAIL" },
                f.scenario,
                f.detail
            ));
        }
        let (dc, df) = self.failures();
        if dc == 0 && df == 0 {
            out.push_str("  all checks passed\n");
        } else {
            out.push_str(&format!(
                "  {dc} differential check(s) and {df} fault scenario(s) FAILED\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ConformReport {
        ConformReport {
            schema_version: CONFORM_SCHEMA_VERSION,
            label: "test".to_string(),
            scale: "smoke".to_string(),
            seed: 42,
            alpha_budget: 1e-9,
            checks: vec![
                Check {
                    name: "voter(l=1)/n16/all_wrong agent~aggregate time".to_string(),
                    statistic: 0.08,
                    critical: 0.5,
                    sizes: (100, 100),
                    pass: true,
                },
                Check {
                    name: "broken".to_string(),
                    statistic: f64::NAN,
                    critical: 0.0,
                    sizes: (0, 100),
                    pass: false,
                },
            ],
            faults: vec![FaultCheck {
                scenario: "torn-line".to_string(),
                pass: true,
                detail: "recovered 2 of 10".to_string(),
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything_but_nan_identity() {
        let report = sample_report();
        let parsed = ConformReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.schema_version, report.schema_version);
        assert_eq!(parsed.label, report.label);
        assert_eq!(parsed.seed, report.seed);
        assert_eq!(parsed.checks.len(), 2);
        assert_eq!(parsed.checks[0], report.checks[0]);
        // NaN survives as NaN (serialized as null).
        assert!(parsed.checks[1].statistic.is_nan());
        assert!(!parsed.checks[1].pass);
        assert_eq!(parsed.faults, report.faults);
    }

    #[test]
    fn pass_requires_every_check_and_fault() {
        let mut report = sample_report();
        assert!(!report.pass());
        assert_eq!(report.failures(), (1, 0));
        report.checks.retain(|c| c.pass);
        assert!(report.pass());
        report.faults[0].pass = false;
        assert!(!report.pass());
        assert_eq!(report.failures(), (0, 1));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("conform_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = sample_report();
        let path = report.save(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "CONFORM_test.json");
        let loaded = ConformReport::load(&path).unwrap();
        assert_eq!(loaded.label, "test");
        assert_eq!(loaded.checks.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_reports_are_rejected_with_context() {
        assert!(ConformReport::from_json("not json").is_err());
        assert!(ConformReport::from_json("{}").unwrap_err().contains("schema_version"));
        let err = ConformReport::from_json(
            "{\"schema_version\":1,\"label\":\"x\",\"scale\":\"smoke\",\"seed\":1,\"alpha_budget\":1e-9,\"checks\":[{}],\"faults\":[]}",
        )
        .unwrap_err();
        assert!(err.contains("check:"), "{err}");
    }

    #[test]
    fn render_reports_failures_and_totals() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("FAIL broken"));
        assert!(text.contains("1 differential check(s) and 0 fault scenario(s) FAILED"));
        assert!(text.contains("ok   fault torn-line"));
    }
}
