//! Fault-injection scenarios for the checkpoint/resume path.
//!
//! Each scenario runs the same replicated workload three times:
//!
//! 1. a **clean reference** with no checkpointing at all — the ground
//!    truth outcomes;
//! 2. a **disturbed first run** whose checkpoint log writes through a
//!    [`FaultyWriter`] (torn final line, short writes, transient errors)
//!    or is cut short mid-batch (worker kill);
//! 3. a **resume**: the log is reopened from disk — exercising torn-tail
//!    repair — and the full workload re-runs against it.
//!
//! The gate is strict bit-identity: because every replication derives its
//! RNG from its index alone, the resumed batch must equal the clean
//! reference outcome-for-outcome, whatever the injected damage did to the
//! log. Anything less means the checkpoint path either lost durable
//! records or replayed corrupt ones.

use std::fs::File;
use std::io::{ErrorKind, Write};
use std::path::Path;
use std::sync::Arc;

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_experiments::workload::measure_convergence_observed;
use bitdissem_obs::{CheckpointLog, FaultyWriter, Obs};
use bitdissem_sim::run::Outcome;

/// Workload shared by all scenarios: small enough to re-run three times
/// per scenario, large enough that a lost or corrupt record is visible.
const N: u64 = 24;
const REPS: usize = 10;
const BUDGET: u64 = 100_000;

/// The verdict of one fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCheck {
    /// Scenario name (`torn-line`, `short-write`, …).
    pub scenario: String,
    /// Whether the resumed batch was bit-identical to the clean run.
    pub pass: bool,
    /// What the first run persisted and what the resume recovered.
    pub detail: String,
}

fn workload_start() -> Configuration {
    Configuration::all_wrong(N, Opinion::One)
}

fn run_batch(obs: &Obs, reps: usize, seed: u64) -> Vec<Outcome> {
    let voter = Voter::new(1).expect("valid ell");
    measure_convergence_observed(obs, &voter, workload_start(), reps, BUDGET, seed, Some(2))
        .outcomes()
        .to_vec()
}

/// Runs one scenario: `first_run` performs the disturbed pass against the
/// log file at `path` (however it chooses to), then the log is reopened
/// and the full batch re-run and compared against the clean reference.
fn scenario(name: &str, path: &Path, seed: u64, first_run: impl FnOnce(&Path, u64)) -> FaultCheck {
    let _ = std::fs::remove_file(path);
    let reference = run_batch(&Obs::none(), REPS, seed);

    first_run(path, seed);

    let log = match CheckpointLog::open(path) {
        Ok(log) => log,
        Err(e) => {
            return FaultCheck {
                scenario: name.to_string(),
                pass: false,
                detail: format!("resume failed to open log: {e}"),
            }
        }
    };
    let stats = log.resume_stats();
    let obs = Obs::none().with_checkpoint(Arc::new(log));
    let resumed = run_batch(&obs, REPS, seed);

    let pass = resumed == reference;
    FaultCheck {
        scenario: name.to_string(),
        pass,
        detail: format!(
            "recovered {} of {} records (skipped {}, torn tail repaired: {}), resume {}",
            stats.recovered,
            REPS,
            stats.skipped_lines,
            stats.torn_tail_repaired,
            if pass { "bit-identical" } else { "DIVERGED" },
        ),
    }
}

/// First run writing through a [`FaultyWriter`] configured by `faults`.
fn faulty_first_run(
    faults: impl FnOnce(FaultyWriter<File>) -> FaultyWriter<File>,
) -> impl FnOnce(&Path, u64) {
    move |path: &Path, seed: u64| {
        let file = File::create(path).expect("scenario log is creatable");
        let writer = faults(FaultyWriter::new(file));
        let log = CheckpointLog::with_writer(Box::new(writer));
        let obs = Obs::none().with_checkpoint(Arc::new(log));
        let _ = run_batch(&obs, REPS, seed);
    }
}

/// Runs every fault scenario, using `dir` for the scenario log files.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `dir` cannot be created.
#[must_use]
pub fn run_fault_scenarios(dir: &Path, seed: u64) -> Vec<FaultCheck> {
    std::fs::create_dir_all(dir).expect("fault scenario directory is creatable");
    let mut results = Vec::new();

    // A checkpoint line for this workload is ~120 bytes; dying inside the
    // third record leaves two durable records and a torn tail.
    results.push(scenario(
        "torn-line",
        &dir.join("ckpt_torn_line.jsonl"),
        seed,
        faulty_first_run(|w| w.with_tear_after(280)),
    ));

    // Every write is capped to 7 bytes: the retry loop must still land
    // complete records.
    results.push(scenario(
        "short-write",
        &dir.join("ckpt_short_write.jsonl"),
        seed,
        faulty_first_run(|w| w.with_short_writes(7)),
    ));

    // A burst of EINTR-style errors at the start of the batch.
    results.push(scenario(
        "transient-interrupted",
        &dir.join("ckpt_transient_eintr.jsonl"),
        seed,
        faulty_first_run(|w| w.with_transient_errors(vec![ErrorKind::Interrupted; 6])),
    ));

    // EWOULDBLOCK interleaved with short writes — the compound case.
    results.push(scenario(
        "transient-wouldblock",
        &dir.join("ckpt_transient_block.jsonl"),
        seed,
        faulty_first_run(|w| {
            w.with_transient_errors(vec![
                ErrorKind::WouldBlock,
                ErrorKind::Interrupted,
                ErrorKind::WouldBlock,
            ])
            .with_short_writes(11)
        }),
    ));

    // Mid-batch kill: the process dies after completing only part of the
    // batch — modeled by checkpointing just the first REPS/2 replications
    // through a perfectly healthy writer.
    results.push(scenario(
        "worker-kill",
        &dir.join("ckpt_worker_kill.jsonl"),
        seed,
        |path: &Path, seed: u64| {
            let file = File::create(path).expect("scenario log is creatable");
            let log = CheckpointLog::with_writer(Box::new(file) as Box<dyn Write + Send>);
            let obs = Obs::none().with_checkpoint(Arc::new(log));
            let _ = run_batch(&obs, REPS / 2, seed);
        },
    ));

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("conform_fault_{}_{}", name, std::process::id()))
    }

    #[test]
    fn every_scenario_resumes_bit_identically() {
        let dir = tmp_dir("all");
        let results = run_fault_scenarios(&dir, 20_240_806);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.pass, "{}: {}", r.scenario, r.detail);
        }
        let names: Vec<&str> = results.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(
            names,
            [
                "torn-line",
                "short-write",
                "transient-interrupted",
                "transient-wouldblock",
                "worker-kill"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_line_scenario_actually_tears() {
        // Guard against the scenario silently degrading to a no-op: the
        // tear budget must leave a damaged tail for open() to repair.
        let dir = tmp_dir("tear_check");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.jsonl");
        faulty_first_run(|w| w.with_tear_after(280))(&path, 3);
        let log = CheckpointLog::open(&path).unwrap();
        let stats = log.resume_stats();
        assert!(stats.torn_tail_repaired, "the tear budget no longer tears a record: {stats:?}");
        assert!(stats.recovered >= 1, "at least one record must land before the tear");
        assert!(stats.recovered < REPS, "the tear must cost at least one record");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
