//! The exact Markov chain as a conformance oracle.
//!
//! The sparse chain ([`SparseChain`]) computes the *law* of the parallel
//! process with no sampling error, which admits three qualitatively
//! different gates against the simulator family:
//!
//! * [`sample_exact`] — i.i.d. draws from the exact censored consensus-time
//!   distribution and the exact checkpoint marginals, shaped as
//!   [`RunSamples`] so the differential harness can KS-compare the exact
//!   law against every simulation backend with the same Bonferroni-split
//!   gates (medium `n`);
//! * [`sparse_dense_check`] — a deterministic row-by-row comparison of the
//!   ε-truncated operator against the dense [`AggregateChain`](bitdissem_markov::chain::AggregateChain) rows: stored
//!   entries must agree to the truncation cutoff and the dropped mass must
//!   stay within each row's tracked tail bound (small `n`);
//! * [`drift_band_check`] — a Proposition-5-style envelope gate at large
//!   `n`, where dense comparison and KS replication are both infeasible:
//!   every one-round step observed in wide-engine trajectories must land
//!   inside the ε-support of the exact transition row of its source state.
//!   A correct engine violates the band with probability at most
//!   `Σ tail(x)` over the observed steps (≈ `pairs × rel_eps`-scale), so a
//!   violation is overwhelming evidence of a law mismatch.

use std::sync::Arc;

use bitdissem_core::{Configuration, GTable, Opinion};
use bitdissem_markov::SparseChain;
use bitdissem_sim::rng::{replication_seed, splitmix64};
use bitdissem_sim::wide::WideBatchedSim;

use crate::backend::RunSamples;
use crate::differential::Check;

/// A uniform in `[0, 1)` from one more SplitMix64 scramble of `x` (53
/// mantissa bits).
fn u01(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Inverse-CDF draw from a discrete distribution given by `weights` (not
/// necessarily perfectly normalized — any residual mass goes to the last
/// index, matching censoring semantics).
fn inverse_cdf(weights: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// Draws `reps` i.i.d. samples from the **exact** law of the parallel
/// process: censored consensus times from the exact hitting-time
/// distribution and `X_t` values from the exact checkpoint marginals,
/// shaped as [`RunSamples`] for the differential harness.
///
/// The exact distribution is advanced through the ε-truncated sparse rows;
/// at the conformance grid sizes the truncation leaks at most
/// `budget × max_tail_bound` (≈ 1e-9 of mass at the default cutoff), far
/// below KS resolution at any feasible replication count.
///
/// Unlike the simulation drivers the observables are drawn independently of
/// each other — the harness only ever compares one observable at a time, so
/// the joint law across observables is irrelevant.
///
/// # Panics
///
/// Panics if the table cannot be materialized for `start.n()` or the start
/// state lies outside the chain's valid range.
#[must_use]
pub fn sample_exact(
    table: &GTable,
    start: Configuration,
    reps: usize,
    budget: u64,
    checkpoints: &[u64],
    seed: u64,
) -> RunSamples {
    let n = start.n();
    let chain = SparseChain::build(table, n, start.correct()).expect("valid grid cell");
    let lo = chain.state_lo();
    let m = chain.num_states();
    let target_i = (chain.target() - lo) as usize;
    let x0_i = (start.ones() - lo) as usize;
    let mut dist = vec![0.0; m];
    dist[x0_i] = 1.0;
    let mut next = vec![0.0; m];
    // time_cdf[t] = P(τ ≤ t): the absorbed mass after t rounds (the target
    // row is a self-loop, so absorbed mass accumulates in place).
    let mut time_cdf = Vec::with_capacity(budget as usize + 1);
    let mut cp_dists: Vec<Vec<f64>> = Vec::with_capacity(checkpoints.len());
    for t in 0..=budget {
        if checkpoints.contains(&t) {
            cp_dists.push(dist.clone());
        }
        time_cdf.push(dist[target_i]);
        if t == budget {
            break;
        }
        next.fill(0.0);
        for (i, &w) in dist.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let (row_abs_lo, row) = chain.row(lo + i as u64);
            let base = (row_abs_lo - lo) as usize;
            for (slot, &p) in next[base..base + row.len()].iter_mut().zip(row) {
                *slot += w * p;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }

    // Censored time draws: smallest t with P(τ ≤ t) > u, else the budget.
    let time_seed = replication_seed(seed, u64::MAX);
    let times: Vec<f64> = (0..reps)
        .map(|rep| {
            let u = u01(replication_seed(time_seed, rep as u64));
            time_cdf.iter().position(|&c| u < c).unwrap_or(budget as usize) as f64
        })
        .collect();

    // Checkpoint marginal draws, one independent stream per checkpoint.
    let marginals: Vec<Vec<f64>> = cp_dists
        .iter()
        .enumerate()
        .map(|(c, d)| {
            let cp_seed = replication_seed(seed, c as u64);
            (0..reps)
                .map(|rep| {
                    let u = u01(replication_seed(cp_seed, rep as u64));
                    (lo + inverse_cdf(d, u) as u64) as f64
                })
                .collect()
        })
        .collect();

    RunSamples { marginals, times }
}

/// Deterministic sparse-vs-dense row conformance at small `n`.
///
/// Every stored sparse entry must match the dense
/// [`AggregateChain`](bitdissem_markov::chain::AggregateChain) row to
/// within twice the truncation cutoff (relative to the row's peak — the
/// stored values and the dense convolution are the same quantity evaluated
/// along different floating-point paths), and the dense mass at dropped
/// positions must not exceed the row's tracked tail bound. The returned
/// [`Check`] reports the worst normalized violation as its statistic with a
/// critical value of 1.
///
/// # Panics
///
/// Panics if the table cannot be materialized at `n`.
#[must_use]
pub fn sparse_dense_check(label: &str, table: &GTable, n: u64, correct: Opinion) -> Check {
    let chain = SparseChain::build(table, n, correct).expect("valid grid cell");
    let agg = chain.aggregate();
    let mut worst = 0.0f64;
    for x in chain.state_lo()..=chain.state_hi() {
        let sparse = chain.dense_row(x);
        let dense = agg.transition_row(x);
        let peak = dense.iter().cloned().fold(0.0, f64::max);
        let entry_tol = 2.0 * chain.rel_eps() * peak;
        // Dropped mass must fit under the tracked tail bound; a hair of
        // slack absorbs the summation order difference.
        let tail_allow = chain.tail_bound(x) * (1.0 + 1e-9) + 1e-300;
        let mut dropped = 0.0;
        for (&s, &d) in sparse.iter().zip(&dense) {
            if s == 0.0 && d > 0.0 {
                dropped += d;
            } else {
                worst = worst.max((s - d).abs() / entry_tol);
            }
        }
        worst = worst.max(dropped / tail_allow);
    }
    Check {
        name: format!("{label}/n{n} exact sparse~dense rows"),
        statistic: worst,
        critical: 1.0,
        sizes: (chain.num_states(), chain.num_states()),
        pass: worst.is_finite() && worst <= 1.0,
    }
}

/// Drift-band oracle at large `n`: wide-engine trajectories against the
/// ε-support envelopes of the exact transition rows.
///
/// Runs `reps` wide-engine replications from the half-correct start for
/// `rounds` rounds and checks that every observed one-round transition
/// `X_t → X_{t+1}` lands inside the stored support of the exact sparse row
/// of `X_t`. The statistic is the number of violating steps (critical 0.5,
/// i.e. any violation fails): under the true law a step escapes the
/// ε-support with probability at most the row's tail bound (≈ 1e-13), so
/// across all observed steps the false-alarm mass stays far below the
/// harness budget, while an engine whose one-step law drifts even slightly
/// at `n` in the thousands lands outside the `O(√(n log 1/ε))`-wide band
/// almost immediately.
///
/// # Panics
///
/// Panics if the table cannot be materialized at `n` or the kernel cannot
/// be compiled.
#[must_use]
pub fn drift_band_check(
    label: &str,
    table: &GTable,
    n: u64,
    reps: usize,
    rounds: u64,
    seed: u64,
) -> Check {
    let chain = SparseChain::build(table, n, Opinion::One).expect("valid grid cell");
    let start = Configuration::new(n, Opinion::One, n / 2).expect("n/2 is a valid count");
    let kernel = Arc::new(table.compile().expect("valid grid cell"));
    let streams: Vec<u64> = (0..reps).map(|rep| replication_seed(seed, rep as u64)).collect();
    let mut batch = WideBatchedSim::new(kernel, start, &streams);
    let mut prev: Vec<u64> = (0..reps).map(|rep| batch.ones_of(rep)).collect();
    let mut pairs = 0usize;
    let mut violations = 0usize;
    for _ in 0..rounds {
        if batch.live() == 0 {
            break;
        }
        batch.step_round();
        for (rep, p) in prev.iter_mut().enumerate() {
            let x1 = batch.ones_of(rep);
            let (row_abs_lo, row) = chain.row(*p);
            pairs += 1;
            if x1 < row_abs_lo || x1 >= row_abs_lo + row.len() as u64 {
                violations += 1;
            }
            *p = x1;
        }
    }
    Check {
        name: format!("{label}/n{n} exact drift-band wide"),
        statistic: violations as f64,
        critical: 0.5,
        sizes: (pairs, pairs),
        pass: violations == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_core::ProtocolExt;
    use bitdissem_markov::chain::AggregateChain;

    fn voter_table(n: u64) -> GTable {
        Voter::new(1).unwrap().to_table(n).unwrap()
    }

    #[test]
    fn exact_samples_have_the_right_shape() {
        let n = 16;
        let start = Configuration::all_wrong(n, Opinion::One);
        let s = sample_exact(&voter_table(n), start, 50, 200, &[1, 2, 4], 9);
        assert_eq!(s.times.len(), 50);
        assert_eq!(s.marginals.len(), 3);
        assert!(s.marginals.iter().all(|m| m.len() == 50));
        // Times are in [0, budget]; marginals are valid states.
        assert!(s.times.iter().all(|&t| (0.0..=200.0).contains(&t)));
        assert!(s.marginals.iter().flatten().all(|&x| (1.0..=16.0).contains(&x)));
    }

    #[test]
    fn exact_sampling_is_deterministic_and_seed_sensitive() {
        let n = 12;
        let start = Configuration::all_wrong(n, Opinion::One);
        let a = sample_exact(&voter_table(n), start, 40, 150, &[2], 5);
        let b = sample_exact(&voter_table(n), start, 40, 150, &[2], 5);
        assert_eq!(a.times, b.times);
        assert_eq!(a.marginals, b.marginals);
        let c = sample_exact(&voter_table(n), start, 40, 150, &[2], 6);
        assert_ne!(a.times, c.times);
    }

    #[test]
    fn exact_mean_time_matches_hitting_expectation() {
        // The empirical mean of many exact draws must approach the exact
        // expected hitting time (the draws come from the true law).
        let n = 16;
        let chain = AggregateChain::build(&Voter::new(1).unwrap(), n, Opinion::One).unwrap();
        let expect = bitdissem_markov::expected_hitting_times(&chain).unwrap().from_state(1);
        let start = Configuration::all_wrong(n, Opinion::One);
        let s = sample_exact(&voter_table(n), start, 4000, 2000, &[], 11);
        let mean = s.times.iter().sum::<f64>() / s.times.len() as f64;
        assert!((mean - expect).abs() < 0.15 * expect, "empirical {mean} vs exact {expect}");
    }

    #[test]
    fn sparse_dense_check_passes_for_real_cells() {
        for n in [16u64, 48, 96] {
            let c = sparse_dense_check("voter(l=1)", &voter_table(n), n, Opinion::One);
            assert!(c.pass, "{}: stat {}", c.name, c.statistic);
        }
        let minority = Minority::new(3).unwrap().to_table(48).unwrap();
        let c = sparse_dense_check("minority(l=3)", &minority, 48, Opinion::One);
        assert!(c.pass, "{}: stat {}", c.name, c.statistic);
    }

    #[test]
    fn drift_band_accepts_the_wide_engine() {
        let n = 1024;
        let c = drift_band_check("voter(l=1)", &voter_table(n), n, 8, 10, 3);
        assert!(c.pass, "{}: {} violations", c.name, c.statistic);
        assert!(c.sizes.0 > 0, "must observe at least one step");
    }

    #[test]
    fn drift_band_has_teeth() {
        // Envelope from a *mismatched* law: the noisy-voter chain at
        // δ = 0.2 concentrates its rows near x ≈ δ/2·n ≈ 102 when the
        // current state hugs the all-wrong edge, while clean-voter
        // trajectories from the all-wrong start stay at x ≲ 10 for many
        // rounds. Every early clean step therefore escapes the noisy
        // envelope — a drift this size must be flagged instantly.
        let n = 1024;
        let noisy =
            bitdissem_core::channel::with_observation_noise(&Voter::new(1).unwrap(), 0.2, n)
                .unwrap();
        let chain = SparseChain::build(&noisy, n, Opinion::One).unwrap();
        let start = Configuration::all_wrong(n, Opinion::One);
        let kernel = Arc::new(voter_table(n).compile().unwrap());
        let streams: Vec<u64> = (0..4).map(|rep| replication_seed(17, rep as u64)).collect();
        let mut batch = WideBatchedSim::new(kernel, start, &streams);
        let mut violated = false;
        let mut prev: Vec<u64> = (0..4).map(|rep| batch.ones_of(rep)).collect();
        for _ in 0..5 {
            batch.step_round();
            for (rep, p) in prev.iter_mut().enumerate() {
                let x1 = batch.ones_of(rep);
                let (rlo, row) = chain.row(*p);
                if x1 < rlo || x1 >= rlo + row.len() as u64 {
                    violated = true;
                }
                *p = x1;
            }
        }
        assert!(violated, "clean voter steps must escape the noisy envelope");
    }
}
