//! Persistent work-stealing worker pool.
//!
//! Experiments run hundreds of replications per sweep point and dozens of
//! sweep points per run. The previous engine spawned and joined a fresh set
//! of scoped threads for **every** batch; this crate keeps one set of
//! workers alive for the whole process and feeds them *chunked,
//! work-stealing* batches instead:
//!
//! * [`Pool::new`] spawns `workers` OS threads that park on a condition
//!   variable until a batch arrives, and live until the pool is dropped.
//! * [`Pool::run_batch`] splits `tasks` indices into chunks, deals the
//!   chunks round-robin over up to `cap` participant slots, publishes the
//!   batch, and **participates from the calling thread** (slot 0). Each
//!   participant drains its own deque from the front and, when empty,
//!   steals from the back of the other slots' deques.
//! * [`Pool::global`] is the shared process-wide pool (sized from
//!   `BITDISSEM_POOL_WORKERS` or the available parallelism) that the
//!   replication runner uses by default, so worker threads are reused
//!   across sweep points, experiments, and `run --all`.
//!
//! # Determinism contract
//!
//! The pool schedules *which thread* runs a task, never *what* the task
//! computes: callers derive any randomness from the task **index** alone
//! (see `bitdissem_sim::rng::replication_seed`). Batch results are
//! therefore bit-identical for every `workers`/`cap` combination, including
//! `cap = 1` (fully serial on the calling thread).
//!
//! # Safety
//!
//! Tasks borrow caller state, while workers are `'static` threads, so the
//! batch core is handed to workers through a lifetime-erased raw pointer
//! ([`BatchHandle`]). Soundness rests on one invariant, enforced by a
//! close/leave handshake on sequentially-consistent atomics:
//! [`Pool::run_batch`] does not return until the batch is closed to new
//! participants **and** every joined worker has left, so the pointer is
//! never dereferenced after the borrowed core leaves scope. This is the
//! same scheme scoped thread-pool libraries use; the unsafe surface is
//! confined to [`BatchHandle`] and documented inline.

#![warn(missing_docs)]

use bitdissem_obs::telemetry::register_thread_slot;
use bitdissem_obs::Counter;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Counters describing how one batch executed. Purely observational: the
/// numbers never influence results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tasks executed (equals the batch size on success).
    pub tasks: u64,
    /// Chunks taken from another participant's deque.
    pub steals: u64,
    /// Participants that executed at least one chunk (including the
    /// submitting thread).
    pub participants: u64,
}

/// Object-safe face of a batch: what a worker runs once it has joined.
trait BatchRun: Sync {
    /// Drains chunks (own deque first, then stealing) until none remain.
    fn work(&self, slot: usize);
}

/// The borrowed heart of a batch, owned by the `run_batch` stack frame.
struct BatchCore<'a> {
    /// One chunk deque per participant slot.
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
    /// Runs a single task index.
    task: &'a (dyn Fn(usize) + Sync),
    /// Striped per-participant counters (see [`bitdissem_obs::Counter`]):
    /// the hot per-task / per-steal increments land on a cache line the
    /// incrementing thread owns, so accounting never contends across
    /// participants the way a shared atomic would.
    executed: Counter,
    steals: Counter,
    workers_used: AtomicU64,
    panicked: AtomicBool,
}

impl<'a> BatchCore<'a> {
    fn new(tasks: usize, cap: usize, task: &'a (dyn Fn(usize) + Sync)) -> Self {
        // Chunk so each participant sees several chunks (smooth stealing)
        // without degenerating to per-task locking on huge batches.
        let chunk = tasks.div_ceil(cap * 8).max(1);
        let mut queues: Vec<VecDeque<Range<usize>>> = (0..cap).map(|_| VecDeque::new()).collect();
        let mut start = 0usize;
        let mut slot = 0usize;
        while start < tasks {
            let end = (start + chunk).min(tasks);
            queues[slot].push_back(start..end);
            slot = (slot + 1) % cap;
            start = end;
        }
        BatchCore {
            queues: queues.into_iter().map(Mutex::new).collect(),
            task,
            executed: Counter::new(),
            steals: Counter::new(),
            workers_used: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        }
    }

    /// Pops the next chunk: front of the own deque, else the back of the
    /// first non-empty other deque (a steal).
    fn next_chunk(&self, slot: usize) -> Option<Range<usize>> {
        if let Some(chunk) = self.queues[slot].lock().expect("queue poisoned").pop_front() {
            return Some(chunk);
        }
        let cap = self.queues.len();
        for off in 1..cap {
            let victim = (slot + off) % cap;
            if let Some(chunk) = self.queues[victim].lock().expect("queue poisoned").pop_back() {
                self.steals.add(1);
                return Some(chunk);
            }
        }
        None
    }
}

impl BatchRun for BatchCore<'_> {
    fn work(&self, slot: usize) {
        let mut ran_any = false;
        while let Some(chunk) = self.next_chunk(slot) {
            ran_any = true;
            for index in chunk {
                // Keep draining after a panic so the batch always
                // completes and the submitter can re-raise deterministically.
                if catch_unwind(AssertUnwindSafe(|| (self.task)(index))).is_err() {
                    self.panicked.store(true, Ordering::Relaxed);
                }
                self.executed.add(1);
            }
        }
        if ran_any {
            self.workers_used.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Lifetime-erased batch registration shared between the submitter and the
/// workers through the injector.
///
/// `core` points at a [`BatchCore`] on the submitting thread's stack. The
/// pointer is only dereferenced between a successful [`BatchHandle::try_join`]
/// and the matching [`BatchHandle::leave`]; [`BatchHandle::close_and_wait`]
/// guarantees that window is empty before `run_batch` returns.
struct BatchHandle {
    core: *const (dyn BatchRun + 'static),
    cap: usize,
    /// Participant slots handed out so far (slot 0 is the submitter).
    participants: AtomicUsize,
    /// Workers currently inside `work` (the submitter is not counted).
    active: AtomicUsize,
    closed: AtomicBool,
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: the raw pointer is the only non-Send/Sync field. Workers
// dereference it only inside the join/leave window, while the pointee is
// alive and `BatchCore` itself is `Sync`; outside that window the pointer
// is treated as an opaque value.
unsafe impl Send for BatchHandle {}
unsafe impl Sync for BatchHandle {}

impl BatchHandle {
    fn new(core: &BatchCore<'_>, cap: usize) -> Self {
        let core: *const (dyn BatchRun + '_) = core;
        // SAFETY (lifetime erasure): the pointer is stored as 'static but
        // `close_and_wait` keeps every dereference within the pointee's
        // actual lifetime, as documented on the struct.
        let core: *const (dyn BatchRun + 'static) = unsafe { std::mem::transmute(core) };
        BatchHandle {
            core,
            cap,
            participants: AtomicUsize::new(1),
            active: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Whether a worker could still join (racy, used only as a cheap
    /// pre-filter while holding the injector lock).
    fn joinable(&self) -> bool {
        !self.closed.load(Ordering::SeqCst) && self.participants.load(Ordering::SeqCst) < self.cap
    }

    /// Attempts to claim a participant slot. On success the caller *must*
    /// call [`BatchHandle::leave`] after finishing its work.
    fn try_join(&self) -> Option<usize> {
        if self.closed.load(Ordering::SeqCst) {
            return None;
        }
        let slot = self
            .participants
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |p| (p < self.cap).then_some(p + 1))
            .ok()?;
        self.active.fetch_add(1, Ordering::SeqCst);
        // Re-check after raising `active`: either we observe the close and
        // back out without touching `core`, or `close_and_wait` observes
        // our `active` and waits for `leave`.
        if self.closed.load(Ordering::SeqCst) {
            self.leave();
            return None;
        }
        Some(slot)
    }

    fn leave(&self) {
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.done.lock().expect("done lock poisoned");
            self.done_cv.notify_all();
        }
    }

    /// Closes the batch to new participants and blocks until every joined
    /// worker has left. After this returns, `core` is never dereferenced
    /// again.
    fn close_and_wait(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut guard = self.done.lock().expect("done lock poisoned");
        while self.active.load(Ordering::SeqCst) != 0 {
            guard = self.done_cv.wait(guard).expect("done lock poisoned");
        }
    }
}

struct PoolShared {
    injector: Mutex<Vec<Arc<BatchHandle>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch: Arc<BatchHandle> = {
            let mut injector = shared.injector.lock().expect("injector poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(batch) = injector.iter().find(|b| b.joinable()).cloned() {
                    break batch;
                }
                injector = shared.work_cv.wait(injector).expect("injector poisoned");
            }
        };
        if let Some(slot) = batch.try_join() {
            // SAFETY: we hold a participant slot, so `close_and_wait` is
            // blocked until our `leave` — the pointee is alive.
            let core = unsafe { &*batch.core };
            core.work(slot);
            batch.leave();
        }
        // Lost the join race (or the batch closed): loop back and park.
    }
}

/// The process-wide effective parallelism: how many threads should
/// *participate* in parallel work (the submitting thread plus background
/// workers). `BITDISSEM_POOL_WORKERS` (historically the *background*
/// worker count) plus one when set, otherwise the machine's full
/// available parallelism; never less than 1.
///
/// This is the **single** resolver for worker-count defaults — the CLI
/// and [`Pool::global`] both derive from it, so a machine uses all of its
/// cores consistently instead of the CLI silently capping at a different
/// number than the pool spawns.
#[must_use]
pub fn effective_parallelism() -> usize {
    std::env::var("BITDISSEM_POOL_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|workers| workers.saturating_add(1))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .max(1)
}

/// A persistent pool of worker threads executing chunked work-stealing
/// batches. See the crate docs for the architecture and the determinism
/// contract.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    batches: AtomicU64,
}

impl Pool {
    /// Spawns a pool with `workers` background threads. The submitting
    /// thread always participates in its own batches, so a pool with `0`
    /// workers degrades to serial in-place execution (useful for tests).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bitdissem-pool-{i}"))
                    .spawn(move || {
                        // Pin this worker to a stable telemetry stripe so
                        // its counter increments always land on the same
                        // cache-padded cell (see `bitdissem_obs::telemetry`).
                        register_thread_slot(i);
                        worker_loop(&shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers: handles, batches: AtomicU64::new(0) }
    }

    /// The shared process-wide pool, created on first use with
    /// [`effective_parallelism`]` − 1` background workers (the submitter
    /// participates, so total participants match the resolved
    /// parallelism).
    #[must_use]
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(effective_parallelism().saturating_sub(1)))
    }

    /// Number of background worker threads (excluding submitters).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Batches executed over the pool's lifetime.
    #[must_use]
    pub fn batches_run(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Runs `task(i)` for every `i in 0..tasks` using at most `cap`
    /// participants (the calling thread plus up to `cap - 1` pool workers)
    /// and blocks until all tasks have finished.
    ///
    /// Tasks may run in any order and on any participating thread; callers
    /// needing reproducibility must make each task a pure function of its
    /// index (the determinism contract in the crate docs).
    ///
    /// # Panics
    ///
    /// Panics with `"worker thread panicked"` if any task panicked (on
    /// whichever thread it ran); the remaining tasks still execute first,
    /// so the batch always runs to completion.
    pub fn run_batch(&self, tasks: usize, cap: usize, task: &(dyn Fn(usize) + Sync)) -> BatchStats {
        if tasks == 0 {
            return BatchStats::default();
        }
        let cap = cap.clamp(1, tasks);
        self.batches.fetch_add(1, Ordering::Relaxed);
        let core = BatchCore::new(tasks, cap, task);
        let handle = Arc::new(BatchHandle::new(&core, cap));
        let published = cap > 1 && !self.workers.is_empty();
        if published {
            self.shared.injector.lock().expect("injector poisoned").push(Arc::clone(&handle));
            self.shared.work_cv.notify_all();
        }

        core.work(0); // the submitter is participant slot 0
        handle.close_and_wait();

        if published {
            let mut injector = self.shared.injector.lock().expect("injector poisoned");
            injector.retain(|b| !Arc::ptr_eq(b, &handle));
        }

        debug_assert_eq!(core.executed.load(Ordering::Relaxed), tasks as u64);
        if core.panicked.load(Ordering::Relaxed) {
            panic!("worker thread panicked");
        }
        BatchStats {
            tasks: core.executed.load(Ordering::Relaxed),
            steals: core.steals.load(Ordering::Relaxed),
            participants: core.workers_used.load(Ordering::Relaxed),
        }
    }

    /// Batch submission over contiguous chunks: splits `0..items` into
    /// `⌈items / chunk⌉` ranges of (at most) `chunk` items and runs
    /// `task(range)` for each through [`Pool::run_batch`], with at most
    /// `cap` participating threads.
    ///
    /// This is the entry point for lock-step engines that amortize
    /// per-task setup across a whole range (e.g. stepping a batch of
    /// simulation replicas in struct-of-arrays layout): the pool schedules
    /// whole chunks, so a chunk's items share one task activation instead
    /// of paying the dispatch cost item by item. The determinism contract
    /// is unchanged — chunk boundaries depend only on `(items, chunk)`,
    /// never on scheduling, so a task that is a pure function of its range
    /// yields reproducible batches at any worker count.
    ///
    /// # Panics
    ///
    /// Panics with `"worker thread panicked"` if any task panicked, after
    /// the batch runs to completion (same policy as [`Pool::run_batch`]).
    pub fn run_chunks(
        &self,
        items: usize,
        chunk: usize,
        cap: usize,
        task: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) -> BatchStats {
        let chunk = chunk.max(1);
        let tasks = items.div_ceil(chunk);
        self.run_batch(tasks, cap, &|i| {
            let lo = i * chunk;
            let hi = (lo + chunk).min(items);
            task(lo..hi);
        })
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            // Take the lock so no worker is between the shutdown check and
            // the wait when we notify.
            let _injector = self.shared.injector.lock().expect("injector poisoned");
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .field("batches_run", &self.batches_run())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunks_covers_every_item_exactly_once() {
        let pool = Pool::new(3);
        for &(items, chunk) in &[(0usize, 8usize), (1, 8), (7, 3), (64, 64), (65, 8), (1000, 17)] {
            let seen = Mutex::new(vec![0u32; items]);
            let stats = pool.run_chunks(items, chunk, 4, &|range| {
                assert!(range.len() <= chunk, "chunk overflow: {range:?}");
                let mut seen = seen.lock().unwrap();
                for i in range {
                    seen[i] += 1;
                }
            });
            assert_eq!(stats.tasks, items.div_ceil(chunk) as u64, "items={items} chunk={chunk}");
            assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn run_chunks_clamps_zero_chunk() {
        let pool = Pool::new(1);
        let count = Mutex::new(0usize);
        let stats = pool.run_chunks(5, 0, 2, &|range| {
            *count.lock().unwrap() += range.len();
        });
        assert_eq!(stats.tasks, 5, "chunk 0 behaves as chunk 1");
        assert_eq!(count.into_inner().unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn run_chunks_propagates_panics() {
        let pool = Pool::new(2);
        pool.run_chunks(16, 4, 2, &|range| assert!(!range.contains(&9), "boom"));
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = Pool::new(3);
        for &tasks in &[1usize, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            let stats = pool.run_batch(tasks, 4, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(stats.tasks, tasks as u64);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "tasks={tasks}");
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = Pool::new(1);
        let stats = pool.run_batch(0, 4, &|_| panic!("must not run"));
        assert_eq!(stats, BatchStats::default());
    }

    #[test]
    fn zero_workers_runs_serially_on_the_caller() {
        let pool = Pool::new(0);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(Vec::new());
        pool.run_batch(16, 8, &|_| {
            ran_on.lock().unwrap().push(std::thread::current().id());
        });
        let ran_on = ran_on.into_inner().unwrap();
        assert_eq!(ran_on.len(), 16);
        assert!(ran_on.iter().all(|&id| id == caller));
    }

    #[test]
    fn cap_one_stays_on_the_caller_and_in_order() {
        let pool = Pool::new(4);
        let order = Mutex::new(Vec::new());
        pool.run_batch(32, 1, &|i| order.lock().unwrap().push(i));
        assert_eq!(order.into_inner().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = Pool::new(2);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run_batch(round + 1, 3, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (round + 1) * (round + 2) / 2);
        }
        assert_eq!(pool.batches_run(), 50);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn task_panic_propagates_after_batch_completion() {
        let pool = Pool::new(2);
        pool.run_batch(8, 2, &|i| assert!(i != 3, "boom"));
    }

    #[test]
    fn panicking_batch_still_runs_every_task() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(64, 3, &|i| {
                hits.fetch_add(1, Ordering::Relaxed);
                assert!(i != 0, "boom");
            });
        }));
        assert!(result.is_err());
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn effective_parallelism_sizes_the_global_pool() {
        // Whatever environment this runs under (the CI pool-matrix sets
        // BITDISSEM_POOL_WORKERS to 1 and 8), the resolver and the global
        // pool must agree: participants = background workers + submitter.
        let participants = effective_parallelism();
        assert!(participants >= 1);
        assert_eq!(Pool::global().workers(), participants - 1);
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        let sum = AtomicUsize::new(0);
        Pool::global().run_batch(100, 8, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn concurrent_submitters_do_not_interfere() {
        let pool = Arc::new(Pool::new(3));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let sum = AtomicUsize::new(0);
                    pool.run_batch(257, 4, &|i| {
                        sum.fetch_add(i + t, Ordering::Relaxed);
                    });
                    sum.load(Ordering::Relaxed)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 257 * 256 / 2 + 257 * t);
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = Pool::new(4);
        pool.run_batch(10, 4, &|_| {});
        drop(pool); // must not hang
    }
}
