//! Offline trace analytics: replaying a recorded JSONL run.
//!
//! A trace produced with `--trace-out` is *self-describing*: every
//! replicated batch opens with a `batch_started` event carrying the
//! protocol's full `g`-table and the batch dimensions (see
//! [`bitdissem_obs::Event::BatchStarted`]). This module groups a decoded
//! event stream by those headers and computes, per batch:
//!
//! - consensus-time summaries and converged/timed-out counts,
//! - per-replication and per-round latency histograms (log-scale),
//! - **theory-conformance checks** against the paper's quantitative
//!   predictions: every adjacent one-step jump against Proposition 4's
//!   `y(c, ℓ) = 1 − (1−c)^{ℓ+1}/2` bound, and the per-round empirical
//!   drift against Proposition 5's `E[X_{t+1} | X_t] = X_t + n·F_n(X_t/n)
//!   ± 1` sandwich.
//!
//! Both checks are *statistical* statements, so each is gated to keep the
//! false-alarm probability negligible on a conforming trace:
//!
//! - **Prop 4** holds except with probability `exp(−a²n/2)` where
//!   `a = (1−c)^{ℓ+1}` (Hoeffding over the zeros that must persist). A
//!   transition is only *checked* when that failure bound is at most
//!   [`JUMP_FAILURE_BUDGET`]; transitions too close to consensus (tiny
//!   `a`) carry a vacuous bound and are skipped, not counted.
//! - **Prop 5** bounds a conditional *expectation*, so single transitions
//!   prove nothing. Residuals `x_{t+1} − x_t − n·F_n(x_t/n)` are averaged
//!   per round across replications; since `X_{t+1}` is a sum of
//!   independent indicators, `Var ≤ n/4`, and the mean of `m` residuals
//!   is flagged only outside `±(1 + z·√(n/(4m)))` with
//!   `z =` [`DRIFT_Z`] — a ≈10⁻⁹ tail per round.

use bitdissem_analysis::jump::y_constant;
use bitdissem_analysis::BiasPolynomial;
use bitdissem_core::GTable;
use bitdissem_obs::columnar::Block;
use bitdissem_obs::Event;
use bitdissem_stats::{LogHistogram, Summary};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-check false-alarm budget for the Prop-4 jump check: a transition
/// is only checked when `exp(−a²n/2) ≤` this, so thousands of checked
/// transitions still have a negligible aggregate false-positive rate.
pub const JUMP_FAILURE_BUDGET: f64 = 1e-9;

/// Gaussian z-score for the Prop-5 per-round mean-residual band
/// (`z = 6` ⇒ ≈10⁻⁹ two-sided tail per round).
pub const DRIFT_Z: f64 = 6.0;

/// The batch header, as recorded in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMeta {
    /// Batch kind (`conv` / `seqconv` / `cross`).
    pub kind: String,
    /// Protocol display name.
    pub protocol: String,
    /// Population size.
    pub n: u64,
    /// Protocol sample size ℓ.
    pub ell: u64,
    /// Ones in the initial configuration `X_0`.
    pub x0: u64,
    /// Replications in the batch.
    pub reps: u64,
    /// Per-replication round budget.
    pub budget: u64,
    /// Base seed.
    pub seed: u64,
    /// `g(0, ·)` row of the protocol table.
    pub g0: Vec<f64>,
    /// `g(1, ·)` row of the protocol table.
    pub g1: Vec<f64>,
}

/// One observed one-step jump that exceeds the Proposition 4 bound.
#[derive(Debug, Clone, PartialEq)]
pub struct JumpViolation {
    /// Replication index within the batch.
    pub rep: u64,
    /// Round label of the *source* state `x_t` (the violating transition
    /// is `round → round + 1`).
    pub round: u64,
    /// Observed `X_t`.
    pub x_t: u64,
    /// Observed `X_{t+1}`.
    pub x_next: u64,
    /// The bound `y(x_t/n, ℓ)·n` that `x_next` exceeded.
    pub bound: f64,
}

/// One round whose mean drift residual falls outside the Proposition 5
/// band.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftViolation {
    /// Round label of the source states.
    pub round: u64,
    /// Transitions averaged at this round.
    pub transitions: usize,
    /// Mean of `x_{t+1} − x_t − n·F_n(x_t/n)` across replications.
    pub mean_residual: f64,
    /// The `1 + z·√(n/(4m))` half-width the mean exceeded.
    pub band: f64,
}

/// Theory-conformance results for one batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conformance {
    /// Adjacent `(round, round+1)` observation pairs found in the trace.
    pub adjacent_pairs: usize,
    /// Transitions that passed the Prop-4 applicability gate and were
    /// checked.
    pub jump_checked: usize,
    /// Transitions exceeding the jump bound.
    pub jump_violations: Vec<JumpViolation>,
    /// Rounds with at least one transition, checked against the drift
    /// band.
    pub drift_rounds_checked: usize,
    /// Rounds whose mean residual escapes the band.
    pub drift_violations: Vec<DriftViolation>,
}

impl Conformance {
    /// Whether any check failed.
    #[must_use]
    pub fn has_violations(&self) -> bool {
        !self.jump_violations.is_empty() || !self.drift_violations.is_empty()
    }
}

/// Everything the analyzer derives for one batch.
#[derive(Debug, Clone)]
pub struct BatchAnalysis {
    /// The recorded header, or `None` for events preceding any
    /// `batch_started` (older traces).
    pub meta: Option<BatchMeta>,
    /// Replications that reported a result.
    pub replications: usize,
    /// How many converged.
    pub converged: usize,
    /// How many exhausted their budget.
    pub timed_out: usize,
    /// Summary of converged consensus times (rounds).
    pub rounds_summary: Option<Summary>,
    /// Per-replication wall-clock latency (µs), log-bucketed.
    pub rep_latency_us: Option<LogHistogram>,
    /// Mean per-round latency per replication (µs), log-bucketed.
    pub round_latency_us: Option<LogHistogram>,
    /// Conformance checks; `None` when the batch is not checkable (no
    /// header, or a kind whose rounds are not parallel one-step
    /// transitions).
    pub conformance: Option<Conformance>,
}

/// The full analysis of a decoded trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Per-batch results, in trace order.
    pub batches: Vec<BatchAnalysis>,
    /// Total events consumed.
    pub events: usize,
    /// Undecodable lines reported by the reader (torn tail etc.).
    pub skipped_lines: usize,
}

impl TraceAnalysis {
    /// Whether any batch has a conformance violation.
    #[must_use]
    pub fn has_violations(&self) -> bool {
        self.batches.iter().any(|b| b.conformance.as_ref().is_some_and(Conformance::has_violations))
    }

    /// Renders the analysis as a human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} batches{}",
            self.events,
            self.batches.len(),
            if self.skipped_lines > 0 {
                format!(" ({} undecodable lines skipped)", self.skipped_lines)
            } else {
                String::new()
            }
        );
        for (i, b) in self.batches.iter().enumerate() {
            let _ = match &b.meta {
                Some(m) => writeln!(
                    out,
                    "\nbatch {}: {} {} n={} ell={} x0={} reps={} budget={} seed={}",
                    i + 1,
                    m.kind,
                    m.protocol,
                    m.n,
                    m.ell,
                    m.x0,
                    m.reps,
                    m.budget,
                    m.seed
                ),
                None => writeln!(out, "\nbatch {}: (no batch header; older trace)", i + 1),
            };
            let _ = writeln!(
                out,
                "  replications: {} ({} converged, {} timed out)",
                b.replications, b.converged, b.timed_out
            );
            if let Some(s) = &b.rounds_summary {
                let _ = writeln!(
                    out,
                    "  rounds to consensus: mean={:.1} median={:.1} min={:.0} max={:.0}",
                    s.mean(),
                    s.median(),
                    s.min(),
                    s.max()
                );
            }
            if let Some(h) = &b.rep_latency_us {
                let _ = writeln!(out, "  replication latency (us): {}", quantile_line(h));
            }
            if let Some(h) = &b.round_latency_us {
                let _ = writeln!(out, "  per-round latency (us):   {}", quantile_line(h));
            }
            match &b.conformance {
                None => {
                    let _ = writeln!(out, "  conformance: not checkable for this batch");
                }
                Some(c) if c.adjacent_pairs == 0 => {
                    let _ = writeln!(
                        out,
                        "  conformance: no adjacent round pairs (strided or round-less trace)"
                    );
                }
                Some(c) => {
                    let _ = writeln!(
                        out,
                        "  Prop 4 (jump bound):  {} of {} transitions checked, {} violations",
                        c.jump_checked,
                        c.adjacent_pairs,
                        c.jump_violations.len()
                    );
                    for v in c.jump_violations.iter().take(10) {
                        let _ = writeln!(
                            out,
                            "    VIOLATION rep={} round={}->{}: x_t={} x_next={} > bound {:.1}",
                            v.rep,
                            v.round,
                            v.round + 1,
                            v.x_t,
                            v.x_next,
                            v.bound
                        );
                    }
                    let _ = writeln!(
                        out,
                        "  Prop 5 (drift band):  {} rounds checked, {} violations",
                        c.drift_rounds_checked,
                        c.drift_violations.len()
                    );
                    for v in c.drift_violations.iter().take(10) {
                        let _ = writeln!(
                            out,
                            "    VIOLATION round={} ({} transitions): mean residual {:.3} outside +-{:.3}",
                            v.round, v.transitions, v.mean_residual, v.band
                        );
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "\nverdict: {}",
            if self.has_violations() { "VIOLATIONS FOUND" } else { "conforms to theory" }
        );
        out
    }
}

fn quantile_line(h: &LogHistogram) -> String {
    let q = |p: f64| h.quantile(p).unwrap_or(0.0);
    format!("p50={:.1} p90={:.1} p99={:.1} ({} samples)", q(0.5), q(0.9), q(0.99), h.count())
}

/// Accumulates the raw events of one batch before analysis.
#[derive(Debug, Default)]
struct BatchAccum {
    meta: Option<BatchMeta>,
    /// `rep → round → ones`.
    rounds: BTreeMap<u64, BTreeMap<u64, u64>>,
    /// `(rep, converged, rounds, elapsed_us)`.
    finished: Vec<(u64, bool, u64, u64)>,
}

impl BatchAccum {
    fn is_empty(&self) -> bool {
        self.meta.is_none() && self.rounds.is_empty() && self.finished.is_empty()
    }
}

/// Builds a log-scale histogram spanning the sample range (12 bins).
fn latency_hist(samples: &[f64]) -> Option<LogHistogram> {
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    if samples.is_empty() || !min.is_finite() {
        return None;
    }
    let lo = min.max(1e-3);
    let hi = (max * (1.0 + 1e-9)).max(lo * 10.0);
    let mut h = LogHistogram::new(lo, hi, 12)?;
    h.extend(samples.iter().copied());
    Some(h)
}

/// Streaming trace analyzer: feed events (or whole columnar blocks) in
/// file order, then [`TraceAccumulator::finish`] to get the
/// [`TraceAnalysis`]. This is the single grouping engine behind both
/// trace formats — the JSONL path pushes decoded [`Event`]s one at a
/// time, the columnar path ingests typed column views without ever
/// materializing events.
#[derive(Debug, Default)]
pub struct TraceAccumulator {
    accums: Vec<BatchAccum>,
    current: BatchAccum,
    events: usize,
}

impl TraceAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new batch (closing the current one, if it holds anything).
    pub fn start_batch(&mut self, meta: BatchMeta) {
        if !self.current.is_empty() {
            self.accums.push(std::mem::take(&mut self.current));
        }
        self.current.meta = Some(meta);
    }

    /// Records one `RoundCompleted` observation in the current batch.
    pub fn add_round(&mut self, rep: u64, round: u64, ones: u64) {
        self.current.rounds.entry(rep).or_default().insert(round, ones);
    }

    /// Records one `ReplicationFinished` result in the current batch.
    pub fn add_finished(&mut self, rep: u64, converged: bool, rounds: u64, elapsed_us: u64) {
        self.current.finished.push((rep, converged, rounds, elapsed_us));
    }

    /// Consumes one decoded event — the JSONL streaming path. Events
    /// that don't affect batch grouping (experiment brackets, manifests,
    /// stability events) still count toward the event total.
    pub fn push(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::BatchStarted {
                kind,
                protocol,
                ell,
                n,
                x0,
                source_opinion: _,
                reps,
                budget,
                seed,
                g0,
                g1,
            } => {
                self.start_batch(BatchMeta {
                    kind: kind.clone(),
                    protocol: protocol.clone(),
                    n: *n,
                    ell: *ell,
                    x0: *x0,
                    reps: *reps,
                    budget: *budget,
                    seed: *seed,
                    g0: g0.clone(),
                    g1: g1.clone(),
                });
            }
            Event::RoundCompleted { rep, round, ones, .. } => {
                self.add_round(*rep, *round, *ones);
            }
            Event::ReplicationFinished { rep, outcome, rounds, elapsed_us } => {
                self.add_finished(
                    *rep,
                    matches!(outcome, bitdissem_obs::ReplicationOutcome::Converged),
                    *rounds,
                    *elapsed_us,
                );
            }
            _ => {}
        }
    }

    /// Consumes one columnar block — the zero-copy path. Hot blocks
    /// (`RoundCompleted`, `ReplicationFinished`) stream straight off the
    /// column views; rare blocks decode their few rows.
    pub fn ingest_block(&mut self, block: &Block<'_>) {
        match block {
            Block::RoundCompleted(c) => {
                self.events += c.len;
                for ((rep, round), ones) in c.rep.iter().zip(c.round.iter()).zip(c.ones.iter()) {
                    self.add_round(rep, round, ones);
                }
            }
            Block::ReplicationFinished(c) => {
                self.events += c.len;
                for (((rep, converged), rounds), elapsed_us) in c
                    .rep
                    .iter()
                    .zip(c.converged.iter())
                    .zip(c.rounds.iter())
                    .zip(c.elapsed_us.iter())
                {
                    self.add_finished(rep, converged != 0, rounds, elapsed_us);
                }
            }
            Block::BatchStarted(headers) => {
                self.events += headers.len();
                for h in headers {
                    self.start_batch(BatchMeta {
                        kind: h.kind.to_string(),
                        protocol: h.protocol.to_string(),
                        n: h.n,
                        ell: h.ell,
                        x0: h.x0,
                        reps: h.reps,
                        budget: h.budget,
                        seed: h.seed,
                        g0: h.g0.clone(),
                        g1: h.g1.clone(),
                    });
                }
            }
            Block::ExperimentStarted(rows) => self.events += rows.len(),
            Block::ExperimentFinished(rows) => self.events += rows.len(),
            Block::ConsensusExited(rows) => self.events += rows.len(),
            Block::Manifest(rows) => self.events += rows.len(),
            Block::TelemetrySample(cols) => self.events += cols.len,
        }
    }

    /// Closes the stream and analyzes every batch.
    #[must_use]
    pub fn finish(mut self, skipped_lines: usize) -> TraceAnalysis {
        if !self.current.is_empty() {
            self.accums.push(self.current);
        }
        TraceAnalysis {
            batches: self.accums.iter().map(analyze_batch).collect(),
            events: self.events,
            skipped_lines,
        }
    }
}

/// Groups a decoded event stream into batches and analyzes each —
/// convenience wrapper over [`TraceAccumulator`] for in-memory slices.
#[must_use]
pub fn analyze(events: &[Event], skipped_lines: usize) -> TraceAnalysis {
    let mut acc = TraceAccumulator::new();
    for ev in events {
        acc.push(ev);
    }
    acc.finish(skipped_lines)
}

fn analyze_batch(accum: &BatchAccum) -> BatchAnalysis {
    let converged = accum.finished.iter().filter(|f| f.1).count();
    let rounds: Vec<f64> = accum.finished.iter().filter(|f| f.1).map(|f| f.2 as f64).collect();
    let rep_samples: Vec<f64> = accum.finished.iter().map(|f| f.3 as f64).collect();
    let round_samples: Vec<f64> =
        accum.finished.iter().filter(|f| f.2 > 0).map(|f| f.3 as f64 / f.2 as f64).collect();
    BatchAnalysis {
        meta: accum.meta.clone(),
        replications: accum.finished.len(),
        converged,
        timed_out: accum.finished.len() - converged,
        rounds_summary: Summary::from_samples(&rounds),
        rep_latency_us: latency_hist(&rep_samples),
        round_latency_us: latency_hist(&round_samples),
        conformance: check_conformance(accum),
    }
}

/// Runs the Prop-4 / Prop-5 checks for one batch, or returns `None` when
/// the batch is not checkable: no header to rebuild the protocol from, or
/// a kind whose round labels are not parallel one-step transitions
/// (`seqconv` rounds are `n` sequential activations; `cross` emits no
/// round events).
fn check_conformance(accum: &BatchAccum) -> Option<Conformance> {
    let meta = accum.meta.as_ref()?;
    if meta.kind != "conv" || meta.n == 0 {
        return None;
    }
    let table = GTable::new(meta.g0.clone(), meta.g1.clone()).ok()?;
    let bias = BiasPolynomial::from_table(&table, meta.n, meta.protocol.clone());
    let n = meta.n;
    let nf = n as f64;
    let ell = usize::try_from(meta.ell).ok()?.max(1);
    // Smallest `a = (1−c)^{ℓ+1}` for which Hoeffding's exp(−a²n/2) stays
    // within the per-check budget.
    let a_min = (2.0 * -JUMP_FAILURE_BUDGET.ln() / nf).sqrt();

    let mut conf = Conformance::default();
    // `round → (sum of residuals, transition count)` for the drift check.
    let mut residuals: BTreeMap<u64, (f64, usize)> = BTreeMap::new();

    for (&rep, by_round) in &accum.rounds {
        // Seed the observed trajectory with X_0 from the header: the
        // round-label convention is that event `r` carries `X_r`, so the
        // initial configuration is exactly the header's `x0`.
        let mut trajectory = by_round.clone();
        trajectory.entry(0).or_insert(meta.x0);
        let mut iter = trajectory.iter().peekable();
        while let (Some((&t, &x_t)), Some(&(&t_next, &x_next))) = (iter.next(), iter.peek()) {
            if t_next != t + 1 {
                continue; // strided trace: not a one-step transition
            }
            conf.adjacent_pairs += 1;

            // Prop 5: accumulate the drift residual for this round.
            let entry = residuals.entry(t).or_insert((0.0, 0));
            entry.0 += x_next as f64 - x_t as f64 - bias.drift_at(x_t);
            entry.1 += 1;

            // Prop 4: check the jump when the concentration bound bites.
            if x_t == 0 || x_t >= n {
                continue; // c outside (0,1): the premise is degenerate
            }
            let c = x_t as f64 / nf;
            let a = (1.0 - c).powi(ell as i32 + 1);
            if a < a_min {
                continue; // vacuous bound this close to consensus
            }
            conf.jump_checked += 1;
            let bound = y_constant(c, ell) * nf;
            if x_next as f64 > bound {
                conf.jump_violations.push(JumpViolation { rep, round: t, x_t, x_next, bound });
            }
        }
    }

    for (&round, &(sum, m)) in &residuals {
        conf.drift_rounds_checked += 1;
        let mean = sum / m as f64;
        let band = 1.0 + DRIFT_Z * (nf / (4.0 * m as f64)).sqrt();
        if mean.abs() > band {
            conf.drift_violations.push(DriftViolation {
                round,
                transitions: m,
                mean_residual: mean,
                band,
            });
        }
    }
    Some(conf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_obs::ReplicationOutcome;

    /// A voter (ℓ=1) batch header for population `n`.
    fn voter_meta(n: u64) -> Event {
        Event::BatchStarted {
            kind: "conv".to_string(),
            protocol: "voter".to_string(),
            ell: 1,
            n,
            x0: 1,
            source_opinion: 1,
            reps: 1,
            budget: 100_000,
            seed: 7,
            g0: vec![0.0, 1.0],
            g1: vec![0.0, 1.0],
        }
    }

    fn round(rep: u64, round: u64, ones: u64) -> Event {
        Event::RoundCompleted { rep, round, ones, source_opinion: 1 }
    }

    fn finished(rep: u64, rounds: u64) -> Event {
        Event::ReplicationFinished {
            rep,
            outcome: ReplicationOutcome::Converged,
            rounds,
            elapsed_us: 10 * rounds,
        }
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let a = analyze(&[], 0);
        assert!(a.batches.is_empty());
        assert!(!a.has_violations());
        assert!(a.render().contains("conforms"));
    }

    #[test]
    fn martingale_steps_conform() {
        // Voter is a martingale (F ≡ 0): small symmetric steps violate
        // neither the drift band nor the jump bound.
        let n = 4096;
        let mut events = vec![voter_meta(n)];
        let mut x = 1u64;
        for r in 1..=200 {
            x += u64::from(r % 2 == 0); // slow upward creep, ±0/1 steps
            events.push(round(0, r, x));
        }
        events.push(finished(0, 200));
        let a = analyze(&events, 0);
        assert_eq!(a.batches.len(), 1);
        let conf = a.batches[0].conformance.as_ref().unwrap();
        assert_eq!(conf.adjacent_pairs, 200); // includes the x0 -> round-1 pair
        assert!(conf.jump_checked > 0);
        assert!(!conf.has_violations(), "{:?}", conf);
        assert!(!a.has_violations());
    }

    #[test]
    fn inflated_jump_is_flagged() {
        // Doctored trace: from X_t = 0.3n the voter (ℓ=1) bound is
        // y = 1 − 0.49/2 = 0.755, so a jump to 0.9n must be flagged.
        // Rounds 5→6 so the injected round 0 forms no adjacent pair and
        // only the doctored transition is analyzed.
        let n = 4096;
        let events = vec![
            voter_meta(n),
            round(0, 5, (3 * n) / 10),
            round(0, 6, (9 * n) / 10),
            finished(0, 6),
        ];
        let a = analyze(&events, 0);
        let conf = a.batches[0].conformance.as_ref().unwrap();
        assert_eq!(conf.jump_violations.len(), 1, "{conf:?}");
        let v = &conf.jump_violations[0];
        assert_eq!((v.rep, v.round), (0, 5));
        assert_eq!(v.x_t, (3 * n) / 10);
        assert_eq!(v.x_next, (9 * n) / 10);
        assert!(a.has_violations());
        assert!(a.render().contains("VIOLATION rep=0 round=5->6"), "{}", a.render());
    }

    #[test]
    fn systematic_drift_is_flagged_for_a_martingale() {
        // Voter has F ≡ 0, so a consistent +20 step across many reps at
        // one round escapes the ±(1 + 6·√(n/4m)) band once m is large
        // enough: n=400, m=100 → band = 1 + 6·1 = 7 < 20.
        let n = 400;
        let reps = 100u64;
        let mut events = vec![voter_meta(n)];
        for rep in 0..reps {
            events.push(round(rep, 1, 50));
            events.push(round(rep, 2, 70)); // +20 drift, every rep
            events.push(finished(rep, 2));
        }
        let a = analyze(&events, 0);
        let conf = a.batches[0].conformance.as_ref().unwrap();
        let drift_rounds: Vec<u64> = conf.drift_violations.iter().map(|v| v.round).collect();
        assert!(drift_rounds.contains(&1), "{:?}", conf.drift_violations);
    }

    #[test]
    fn near_consensus_jumps_are_gated_not_flagged() {
        // From X_t = n−2 the bound is vacuous (a ≈ (2/n)^2 is far below
        // the gate): a converging final step must be skipped, not flagged.
        // Rounds 5→6 so the injected round 0 forms no adjacent pair and
        // the near-consensus transition is the only one analyzed.
        let n = 1024;
        let events = vec![voter_meta(n), round(0, 5, n - 2), round(0, 6, n), finished(0, 6)];
        let a = analyze(&events, 0);
        let conf = a.batches[0].conformance.as_ref().unwrap();
        assert_eq!(conf.adjacent_pairs, 1);
        assert_eq!(conf.jump_checked, 0, "vacuous bound must be gated: {conf:?}");
        assert_eq!(conf.jump_violations.len(), 0, "{conf:?}");
    }

    #[test]
    fn strided_traces_have_no_adjacent_pairs() {
        let n = 256;
        let events = vec![voter_meta(n), round(0, 10, 30), round(0, 20, 60), finished(0, 25)];
        let a = analyze(&events, 0);
        let conf = a.batches[0].conformance.as_ref().unwrap();
        assert_eq!(conf.adjacent_pairs, 0);
        assert!(a.render().contains("no adjacent round pairs"), "{}", a.render());
    }

    #[test]
    fn non_conv_batches_are_not_checked() {
        // `seqconv` round labels are sequential activations, not parallel
        // one-step transitions, so the checks must not apply.
        let mut seq = voter_meta(64);
        if let Event::BatchStarted { kind, .. } = &mut seq {
            *kind = "seqconv".to_string();
        }
        let events = vec![seq, round(0, 1, 5), round(0, 2, 9), finished(0, 2)];
        let a = analyze(&events, 0);
        assert!(a.batches[0].conformance.is_none());
        assert!(a.render().contains("not checkable"), "{}", a.render());
    }

    #[test]
    fn batches_split_on_headers_and_headerless_prefix_survives() {
        let events = vec![
            finished(0, 3), // pre-header events (older trace)
            voter_meta(128),
            round(0, 1, 2),
            finished(0, 1),
        ];
        let a = analyze(&events, 2);
        assert_eq!(a.batches.len(), 2);
        assert!(a.batches[0].meta.is_none());
        assert!(a.batches[0].conformance.is_none());
        assert!(a.batches[1].meta.is_some());
        assert_eq!(a.skipped_lines, 2);
        assert!(a.render().contains("undecodable"), "{}", a.render());
    }

    #[test]
    fn latency_histograms_cover_replications() {
        let mut events = vec![voter_meta(64)];
        for rep in 0..8 {
            events.push(finished(rep, 10 + rep));
        }
        let a = analyze(&events, 0);
        let b = &a.batches[0];
        assert_eq!(b.replications, 8);
        assert_eq!(b.converged, 8);
        assert_eq!(b.rep_latency_us.as_ref().unwrap().count(), 8);
        assert_eq!(b.round_latency_us.as_ref().unwrap().count(), 8);
        assert!(b.rounds_summary.is_some());
    }
}
