//! Experiment harness for the `bitdissem` reproduction.
//!
//! The paper is a brief announcement: its "evaluation" is a set of theorems
//! and proof-sketch figures rather than measurement tables. Each of them is
//! reproduced here as a regenerable experiment (see `DESIGN.md` §3 for the
//! full index):
//!
//! | ID  | Reproduces |
//! |-----|------------|
//! | E1  | Theorem 1/12 — `Ω(n^{1−ε})` lower bound for constant `ℓ` |
//! | E2  | Theorem 2 — Voter `O(n log n)` upper bound |
//! | E3  | Becchetti et al. — Minority `O(log² n)` with `ℓ = √(n ln n)` |
//! | E4  | Open question — minimal `ℓ` for fast Minority |
//! | E5  | Figures 2–3 — bias-polynomial root structure & case split |
//! | E6  | Figure 1 — Doob decomposition mechanics of Theorem 6 |
//! | E7  | Figure 4 — Voter dual coalescing process |
//! | E8  | Proposition 4 — one-step jump bound |
//! | E9  | Proposition 3 — consensus-maintenance necessity |
//! | E10 | Engine validation vs exact Markov chains |
//! | E11 | \[14\] — sequential vs parallel exponential gap |
//! | E12 | Minority without a source: consensus & oscillation |
//! | A1–A3 | Design ablations (simulators, samplers, root isolation) |
//!
//! Run any of them through the [`registry`]:
//!
//! ```
//! use bitdissem_experiments::{registry, RunConfig};
//!
//! let cfg = RunConfig::smoke(42);
//! let report = registry::run("e5", &cfg).expect("known experiment");
//! assert!(report.render().contains("bias"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod config;
pub mod exp;
pub mod registry;
pub mod report;
pub mod trace;
pub mod workload;

pub use config::{ReplicationEngine, RunConfig, Scale};
pub use report::ExperimentReport;
