//! Experiment reports: one uniform shape for every table and figure.

use serde::{Deserialize, Serialize};

use bitdissem_obs::RunManifest;
use bitdissem_stats::Table;

/// The result of one experiment run: titled tables plus a verdict on
/// whether the measured *shape* matches the paper's claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short experiment id (`e1`, …, `a3`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper claims / what shape we expect.
    pub paper_claim: String,
    /// Result tables, each with a caption.
    pub tables: Vec<(String, Table)>,
    /// Free-form findings (one line each).
    pub findings: Vec<String>,
    /// `true` when every directional expectation held in this run.
    pub pass: bool,
    /// Provenance record (seed, scale, threads, version, timing), attached
    /// by the registry when the run is observed.
    pub manifest: Option<RunManifest>,
}

impl ExperimentReport {
    /// Creates an empty passing report.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            tables: Vec::new(),
            findings: Vec::new(),
            pass: true,
            manifest: None,
        }
    }

    /// Attaches the run manifest.
    pub fn set_manifest(&mut self, manifest: RunManifest) {
        self.manifest = Some(manifest);
    }

    /// Appends a captioned table.
    pub fn add_table(&mut self, caption: impl Into<String>, table: Table) {
        self.tables.push((caption.into(), table));
    }

    /// Records a finding line.
    pub fn finding(&mut self, line: impl Into<String>) {
        self.findings.push(line.into());
    }

    /// Records a checked expectation: the finding line is prefixed with its
    /// verdict and the overall pass flag is updated.
    pub fn check(&mut self, ok: bool, line: impl Into<String>) {
        let verdict = if ok { "OK " } else { "FAIL" };
        self.findings.push(format!("[{verdict}] {}", line.into()));
        self.pass &= ok;
    }

    /// Renders the full report as plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id.to_uppercase(), self.title));
        out.push_str(&format!("paper: {}\n", self.paper_claim));
        for (caption, table) in &self.tables {
            out.push_str(&format!("\n-- {caption} --\n"));
            out.push_str(&table.render());
        }
        if !self.findings.is_empty() {
            out.push_str("\nfindings:\n");
            for f in &self.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out.push_str(&format!("\nverdict: {}\n", if self.pass { "PASS" } else { "FAIL" }));
        // The manifest is deliberately NOT rendered: it carries wall-clock
        // fields, and `render()` must stay byte-identical for a fixed seed
        // (the determinism integration tests compare it directly).
        out
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_parts() {
        let mut r = ExperimentReport::new("e1", "Lower bound", "T = Ω(n^{1-ε})");
        let mut t = Table::new(["n", "T"]);
        t.row(["128", "99"]);
        r.add_table("scaling", t);
        r.finding("note");
        r.check(true, "exponent above 0.8");
        let text = r.render();
        assert!(text.contains("E1"));
        assert!(text.contains("scaling"));
        assert!(text.contains("128"));
        assert!(text.contains("[OK ]"));
        assert!(text.contains("PASS"));
    }

    #[test]
    fn failed_check_flips_verdict() {
        let mut r = ExperimentReport::new("x", "t", "c");
        r.check(true, "first");
        assert!(r.pass);
        r.check(false, "second");
        assert!(!r.pass);
        assert!(r.render().contains("FAIL"));
    }

    #[test]
    fn display_matches_render() {
        let r = ExperimentReport::new("x", "t", "c");
        assert_eq!(format!("{r}"), r.render());
    }

    #[test]
    fn manifest_is_stored_but_stays_out_of_render() {
        let mut r = ExperimentReport::new("x", "t", "c");
        let baseline = r.render();
        r.set_manifest(RunManifest::example());
        assert_eq!(r.manifest.as_ref().unwrap().experiment_id, "e2");
        // Wall-clock provenance must not perturb the deterministic render.
        assert_eq!(r.render(), baseline);
    }
}
