//! Experiment registry: look up and run experiments by id.

use bitdissem_obs::{Event, Obs, RunManifest};

use crate::config::RunConfig;
use crate::exp;
use crate::report::ExperimentReport;

/// One registry entry.
#[derive(Clone, Copy)]
pub struct Entry {
    /// Experiment id (`e1`…`e12`, `a1`…`a3`).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runner function.
    pub run: fn(&RunConfig, &Obs) -> ExperimentReport,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("id", &self.id)
            .field("description", &self.description)
            .finish()
    }
}

/// All registered experiments, in index order.
#[must_use]
pub fn all() -> Vec<Entry> {
    vec![
        Entry {
            id: "e1",
            description: "Theorem 1/12: almost-linear lower bound for constant sample size",
            run: exp::e01_lower_bound::run,
        },
        Entry {
            id: "e2",
            description: "Theorem 2: Voter O(n log n) upper bound",
            run: exp::e02_voter_upper::run,
        },
        Entry {
            id: "e3",
            description: "[15]: Minority with l = sqrt(n ln n) is poly-log fast",
            run: exp::e03_minority_fast::run,
        },
        Entry {
            id: "e4",
            description: "open question: minimal sample size for a fast Minority",
            run: exp::e04_sample_sweep::run,
        },
        Entry {
            id: "e5",
            description: "Figures 2-3: bias-polynomial roots and witness case split",
            run: exp::e05_bias_roots::run,
        },
        Entry {
            id: "e6",
            description: "Figure 1: Doob decomposition mechanics of Theorem 6",
            run: exp::e06_doob::run,
        },
        Entry {
            id: "e7",
            description: "Figure 4: Voter dual coalescing random walks",
            run: exp::e07_dual::run,
        },
        Entry {
            id: "e8",
            description: "Proposition 4: one-step jump bound",
            run: exp::e08_jump::run,
        },
        Entry {
            id: "e9",
            description: "Proposition 3: consensus maintenance necessity",
            run: exp::e09_prop3::run,
        },
        Entry {
            id: "e10",
            description: "engine validation vs exact Markov chains",
            run: exp::e10_exact::run,
        },
        Entry {
            id: "e11",
            description: "[14]: sequential vs parallel exponential gap",
            run: exp::e11_seq_par::run,
        },
        Entry {
            id: "e12",
            description: "Minority without a source: speed and oscillation",
            run: exp::e12_minority_consensus::run,
        },
        Entry {
            id: "e13",
            description: "future work: constant memory under passive communication",
            run: exp::e13_memory::run,
        },
        Entry {
            id: "e14",
            description: "robustness: observation noise destroys dissemination",
            run: exp::e14_noise::run,
        },
        Entry {
            id: "e15",
            description: "[14]: exact sequential Omega(n) bound for arbitrary protocols",
            run: exp::e15_sequential_lb::run,
        },
        Entry {
            id: "e16",
            description: "self-stabilization: exhaustive worst start vs the witness",
            run: exp::e16_selfstab::run,
        },
        Entry {
            id: "e17",
            description: "protocol synthesis: tuning the table cannot escape Theorem 1",
            run: exp::e17_synthesis::run,
        },
        Entry {
            id: "e18",
            description: "partial synchrony: where the [15] fast regime collapses",
            run: exp::e18_synchronicity::run,
        },
        Entry {
            id: "e19",
            description: "environment layer: re-convergence after flips and resets",
            run: exp::e19_reconvergence::run,
        },
        Entry {
            id: "e20",
            description: "Theorem 2 vs 12: exact sparse-chain convergence frontier at large n",
            run: exp::e20_exact_frontier::run,
        },
        Entry {
            id: "a1",
            description: "ablation: aggregate vs agent-level simulator",
            run: exp::a1_agg_vs_agent::run,
        },
        Entry {
            id: "a2",
            description: "ablation: binomial sampler algorithms",
            run: exp::a2_binomial::run,
        },
        Entry {
            id: "a3",
            description: "ablation: Bernstein vs Sturm root isolation",
            run: exp::a3_roots::run,
        },
    ]
}

/// Runs the experiment with the given id, or returns `None` for an unknown
/// id.
#[must_use]
pub fn run(id: &str, cfg: &RunConfig) -> Option<ExperimentReport> {
    run_observed(id, cfg, &Obs::none())
}

/// [`run`] with an observability handle: brackets the experiment with
/// `ExperimentStarted` / `ExperimentFinished` trace events, attaches a
/// [`RunManifest`] to the report (and emits it into the trace), and
/// flushes the sink before returning.
#[must_use]
pub fn run_observed(id: &str, cfg: &RunConfig, obs: &Obs) -> Option<ExperimentReport> {
    let id = id.to_ascii_lowercase();
    let entry = all().into_iter().find(|e| e.id == id)?;
    // Namespace checkpoint keys per experiment so one shared log can hold
    // an entire `run --all` sweep without cross-experiment collisions.
    let obs = &obs.clone().with_checkpoint_ns(entry.id);

    let manifest =
        RunManifest::begin(entry.id, cfg.seed, cfg.scale.name(), cfg.threads.unwrap_or(0))
            .with_env(cfg.env.map(|e| e.fingerprint()));
    // Snapshot the shared counters so the manifest can carry this
    // experiment's *deltas*: summing the counters over all manifests of a
    // run then reconciles exactly with the final telemetry export.
    let counters_before = obs.metrics_on().then(|| obs.metrics().snapshot());
    let timer = bitdissem_obs::Timer::start();
    if obs.active() {
        obs.emit(&Event::ExperimentStarted {
            id: entry.id.to_string(),
            title: entry.description.to_string(),
            seed: cfg.seed,
            scale: cfg.scale.name().to_string(),
        });
    }

    let mut report = (entry.run)(cfg, obs);

    let mut manifest = manifest.finish(timer.elapsed());
    if let Some(before) = counters_before {
        let after = obs.metrics().snapshot();
        let deltas = after
            .named()
            .into_iter()
            .zip(before.named())
            .map(|((name, now), (_, then))| (name.to_string(), now.saturating_sub(then)))
            .collect();
        manifest = manifest.with_counters(deltas);
    }
    if obs.active() {
        obs.emit(&Event::ExperimentFinished {
            id: entry.id.to_string(),
            pass: report.pass,
            elapsed_us: manifest.duration_us,
        });
        obs.emit(&Event::Manifest(manifest.clone()));
    }
    report.set_manifest(manifest);
    obs.flush();
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_entries_are_unique() {
        let entries = all();
        assert_eq!(entries.len(), 23);
        let mut ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("zzz", &crate::RunConfig::smoke(1)).is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cfg = crate::RunConfig::smoke(1);
        assert!(run("E5", &cfg).is_some());
    }
}
