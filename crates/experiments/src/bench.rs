//! Macro-benchmark workloads for `bitdissem bench`.
//!
//! Each benchmark exercises one hot path of the reproduction pipeline and
//! reports *throughput* samples (bigger is better), so a regression
//! verdict is a median **drop**:
//!
//! - `agent_step` — sequential-simulator activations per second (one
//!   parallel round = `n` agent activations);
//! - `aggregate_rounds` — aggregate exact-chain simulator rounds per
//!   second (the solo reference chain);
//! - `aggregate_rounds_l<ℓ>` / `simd_rounds` / `sharded_rounds` — wide
//!   replication-engine replica-rounds per second: lock-step batches on
//!   counter-rng streams, without and with pool sharding (the engine
//!   behind large convergence sweeps);
//! - `markov_rowbuild` / `markov_matvec` — exact sparse-chain analytics:
//!   ε-truncated transition rows built per second, and stored entries
//!   consumed per second by full distribution steps (the hot loops behind
//!   exact hitting times and survival curves at large `n`);
//! - `pool_scaling_w<k>` — replications per second through the persistent
//!   worker pool at `k` workers, for `k` over `1, 2, 4, …, W` — the
//!   scaling curve the CI pool-matrix job watches;
//! - `checkpoint_write` — checkpoint-log records per second against a
//!   real file (the resume path's write side).
//!
//! Every sample repeats enough work to be far above timer resolution, and
//! all simulation inputs derive from the [`BenchCtx`] seed so two runs
//! benchmark *identical* workloads — only the timing varies.

use crate::config::Scale;
use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, Opinion, ProtocolExt};
use bitdissem_markov::{AggregateChain, SparseChain};
use bitdissem_obs::{CheckpointLog, ColumnarSink, Event, EventSink, JsonlSink, Obs, TraceFormat};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::batched::BatchedAggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;
use bitdissem_sim::runner::replicate;
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_sim::wide::{replicate_wide_observed, WideBatchedSim};
use std::sync::Arc;
use std::time::Instant;

/// Parameters shared by every benchmark in a run.
#[derive(Debug, Clone, Copy)]
pub struct BenchCtx {
    /// Work-size tier (smoke stays CI-friendly, full is minutes).
    pub scale: Scale,
    /// Base seed: fixes the simulated workloads exactly.
    pub seed: u64,
    /// Largest worker count exercised by the pool-scaling curve.
    pub max_workers: usize,
}

impl BenchCtx {
    /// A context with the given scale, seed 42, and the pool-scaling
    /// ceiling capped at the machine's parallelism.
    #[must_use]
    pub fn new(scale: Scale, seed: u64, max_workers: usize) -> Self {
        Self { scale, seed, max_workers: max_workers.max(1) }
    }

    fn samples(&self) -> usize {
        self.scale.pick(3, 5, 10)
    }
}

/// One benchmark's throughput samples.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark id (the key compared against baselines).
    pub id: String,
    /// Unit of the samples; always a throughput (bigger is better).
    pub unit: &'static str,
    /// One throughput measurement per timed repetition.
    pub samples: Vec<f64>,
}

/// The worker counts exercised by the pool-scaling curve: powers of two
/// up to `max`, with `max` itself always included.
#[must_use]
pub fn worker_counts(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |w| w.checked_mul(2))
        .take_while(|&w| w <= max)
        .collect();
    if *counts.last().expect("starts at 1") != max {
        counts.push(max);
    }
    counts
}

/// Times `work` once and converts it to a throughput sample.
fn throughput(units: f64, work: impl FnOnce()) -> f64 {
    let start = Instant::now();
    work();
    let secs = start.elapsed().as_secs_f64();
    // Sub-resolution elapsed times would divide by zero; clamp to 1 ns so
    // a pathological sample is merely huge, not infinite.
    units / secs.max(1e-9)
}

/// Sequential-simulator activations per second.
fn bench_agent_step(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(256u64, 1024, 4096);
    let rounds = ctx.scale.pick(50u64, 200, 500);
    let voter = Voter::new(1).expect("ell >= 1");
    let start = Configuration::all_wrong(n, Opinion::One);
    let samples = (0..ctx.samples())
        .map(|i| {
            let mut rng = rng_from(replication_seed(ctx.seed, i as u64));
            let mut sim = SequentialSim::new(&voter, start).expect("valid protocol");
            throughput((rounds * n) as f64, || {
                for _ in 0..rounds {
                    sim.step_round(&mut rng);
                }
            })
        })
        .collect();
    BenchResult { id: "agent_step".to_string(), unit: "activations_per_sec", samples }
}

/// Aggregate exact-chain simulator rounds per second.
fn bench_aggregate_rounds(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(1024u64, 4096, 16_384);
    let rounds = ctx.scale.pick(200u64, 1000, 5000);
    let voter = Voter::new(1).expect("ell >= 1");
    let start = Configuration::all_wrong(n, Opinion::One);
    let samples = (0..ctx.samples())
        .map(|i| {
            let mut rng = rng_from(replication_seed(ctx.seed ^ 1, i as u64));
            let mut sim = AggregateSim::new(&voter, start).expect("valid protocol");
            // Criterion-style warm-up outside the timed window: the id
            // reports *sustained* rounds/sec, with per-run one-time costs
            // (plan-cache fills, lazy tables) already paid.
            for _ in 0..rounds {
                sim.step_round(&mut rng);
            }
            throughput(rounds as f64, || {
                for _ in 0..rounds {
                    sim.step_round(&mut rng);
                }
            })
        })
        .collect();
    BenchResult { id: "aggregate_rounds".to_string(), unit: "rounds_per_sec", samples }
}

/// Replica-rounds per second at sample size `ell` (Minority dynamics) on
/// the wide engine — the convergence-sweep hot path at its production
/// shape: a lock-step batch of replicas hovering near the Minority-`ℓ`
/// interior fixed point (`x₀ = n/2`), so nothing absorbs and every timed
/// round exercises the full counter-rng + fused-alias-draw path.
///
/// Earlier baselines for this id timed one solo chain (serially dependent
/// draws); since the wide engine landed, the id reports the *sustained
/// total* replica-rounds/sec of a batch — same unit, the engine actually
/// used for ℓ-sweeps at scale. Warm-up stays outside the timed window so
/// one-time plan builds are already paid.
///
/// This function produces the `telemetry_overhead_l<ℓ>` id in the same
/// breath: the two legs alternate *per sample* — one telemetry-off
/// window (bare `step_round` loop, no metrics, no snapshot thread),
/// then the identical workload through the observed loop with metrics
/// on and a snapshot thread merging the sharded cells into a columnar
/// telemetry trace at the CLI's default 250 ms cadence. Pairing at the
/// sample level matters: whole-machine throughput on shared hosts
/// drifts by tens of percent over minutes, so any comparison between
/// distant suite slots would measure the weather, not the
/// instrumentation. Each timed window is ~0.25 s — it spans a full
/// snapshot interval, so a merge wake-up or a stray preemption
/// amortizes instead of cratering a ~2 ms sample. Comparing the two
/// medians bounds the live-telemetry overhead — the ≤2% budget the
/// subsystem is gated on. The snapshot thread only runs during the
/// telemetry-on legs, so the off legs are a true control.
///
/// Setup failures (unwritable temp dir) yield an empty telemetry-on
/// sample list, like [`bench_checkpoint_write`].
fn bench_aggregate_vs_telemetry(ctx: &BenchCtx, ell: usize) -> (BenchResult, BenchResult) {
    let n = ctx.scale.pick(1024u64, 4096, 16_384);
    let rounds = ctx.scale.pick(200u64, 1000, 5000);
    let reps = 1024usize;
    let minority = Minority::new(ell).expect("odd ell >= 1");
    let kernel = Arc::new(minority.to_table(n).expect("valid").compile().expect("compiles"));
    let start = Configuration::new(n, Opinion::One, n / 2).expect("x0 <= n");
    let labels: Vec<u64> = (0..reps as u64).collect();
    // Window sized to ~0.25s at every scale (the multiplier shrinks as
    // `rounds` grows): long enough to span a full snapshot interval, so
    // each telemetry-on window pays the merge's amortized cost instead
    // of playing all-or-nothing roulette with the snapshot timer, and
    // long enough that a stray preemption doesn't crater a sample.
    // Debug builds only exercise the suite's *shape* (the smoke test);
    // their timings are meaningless, so keep the windows tiny there.
    let timed =
        if cfg!(debug_assertions) { 2 * rounds } else { rounds * ctx.scale.pick(250u64, 50, 10) };
    // 5x the suite's base sample count: this pair gates a ≤2% budget,
    // which 3 smoke samples per leg cannot resolve against host noise —
    // 15 alternating pairs tighten the median comparison toward the
    // budget's resolution even on a noisy single-core host.
    let samples = 5 * ctx.samples();
    let mut off = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    for i in 0..samples {
        let streams: Vec<u64> = (0..reps)
            .map(|rep| replication_seed(ctx.seed ^ (ell as u64), (i * reps + rep) as u64))
            .collect();
        // Telemetry-off leg: the bare hot loop.
        let run_off = || {
            let mut batch = WideBatchedSim::new(Arc::clone(&kernel), start, &streams);
            for _ in 0..rounds {
                batch.step_round();
            }
            throughput((timed * reps as u64) as f64, || {
                for _ in 0..timed {
                    batch.step_round();
                }
                assert_eq!(batch.round(), rounds + timed);
            })
        };
        // Telemetry-on leg: same streams, fresh batch. Thread spawn/join
        // and file create/delete stay outside the timed window.
        let run_on = || {
            let path = std::env::temp_dir().join(format!(
                "bitdissem-bench-telemetry-l{ell}-{}-{}-{i}.bct",
                std::process::id(),
                ctx.seed
            ));
            let exporter =
                bitdissem_obs::telemetry::ColumnarTelemetryExporter::create(&path).ok()?;
            let obs = Obs::none().with_metrics();
            // 250 ms is the CLI's default snapshot cadence — the
            // configuration a production run actually ships with.
            let handle = bitdissem_obs::start_telemetry(
                Arc::clone(obs.metrics()),
                None,
                std::time::Duration::from_millis(250),
                vec![Box::new(exporter) as Box<dyn bitdissem_obs::TelemetryExporter>],
            );
            let mut batch = WideBatchedSim::new(Arc::clone(&kernel), start, &streams);
            let _ = batch.run_to_consensus_observed(rounds, &obs, &labels);
            let sample = throughput((timed * reps as u64) as f64, || {
                let _ = batch.run_to_consensus_observed(rounds + timed, &obs, &labels);
                assert_eq!(batch.round(), rounds + timed);
            });
            handle.stop();
            let _ = std::fs::remove_file(&path);
            Some(sample)
        };
        // Alternate which leg goes first: host throughput oscillates on
        // second scales, and a fixed leg order would alias that
        // oscillation into a systematic off/on bias that the median
        // cannot remove. Alternation turns it into symmetric noise.
        if i % 2 == 0 {
            off.push(run_off());
            on.extend(run_on());
        } else {
            on.extend(run_on());
            off.push(run_off());
        }
    }
    (
        BenchResult {
            id: format!("aggregate_rounds_l{ell}"),
            unit: "rounds_per_sec",
            samples: off,
        },
        BenchResult {
            id: format!("telemetry_overhead_l{ell}"),
            unit: "rounds_per_sec",
            samples: on,
        },
    )
}

/// Wide-engine lane throughput: total replica-rounds per second of one
/// large lock-step [`WideBatchedSim`] batch (hovering Minority ℓ = 5), the
/// `simd_rounds` group gating the lane/fused-draw path in isolation —
/// counter-word generation, step-cache hits, and alias draws, no pool.
fn bench_simd_rounds(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(1024u64, 4096, 16_384);
    let rounds = ctx.scale.pick(200u64, 1000, 5000);
    let reps = 512usize;
    let minority = Minority::new(5).expect("odd ell >= 1");
    let kernel = Arc::new(minority.to_table(n).expect("valid").compile().expect("compiles"));
    let start = Configuration::new(n, Opinion::One, n / 2).expect("x0 <= n");
    let samples = (0..ctx.samples())
        .map(|i| {
            let streams: Vec<u64> = (0..reps)
                .map(|rep| replication_seed(ctx.seed ^ 0x51D0, (i * reps + rep) as u64))
                .collect();
            let mut batch = WideBatchedSim::new(Arc::clone(&kernel), start, &streams);
            for _ in 0..rounds {
                batch.step_round();
            }
            throughput((rounds * reps as u64) as f64, || {
                for _ in 0..rounds {
                    batch.step_round();
                }
                assert_eq!(batch.round(), 2 * rounds);
            })
        })
        .collect();
    BenchResult { id: "simd_rounds".to_string(), unit: "rounds_per_sec", samples }
}

/// Sharded wide-engine throughput: total replica-rounds per second through
/// [`replicate_wide_observed`] — the full production driver, pool sharding
/// included. The hovering Minority start never absorbs, so every
/// replication runs its whole budget and the workload is exactly
/// `reps · budget` replica-rounds regardless of seed.
fn bench_sharded_rounds(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(1024u64, 4096, 16_384);
    let budget = ctx.scale.pick(400u64, 2000, 5000);
    let reps = 256usize;
    let minority = Minority::new(3).expect("odd ell >= 1");
    let kernel = Arc::new(minority.to_table(n).expect("valid").compile().expect("compiles"));
    let start = Configuration::new(n, Opinion::One, n / 2).expect("x0 <= n");
    let indices: Vec<usize> = (0..reps).collect();
    let obs = Obs::none();
    let samples = (0..ctx.samples())
        .map(|_| {
            throughput((budget * reps as u64) as f64, || {
                let out = replicate_wide_observed(
                    &kernel,
                    start,
                    &indices,
                    ctx.seed ^ 0x5A4D,
                    None,
                    budget,
                    &obs,
                );
                assert_eq!(out.len(), reps);
            })
        })
        .collect();
    BenchResult { id: "sharded_rounds".to_string(), unit: "rounds_per_sec", samples }
}

/// Sparse-chain row construction throughput: ε-truncated rows built per
/// second from a prebuilt [`AggregateChain`] (the sparsification step in
/// isolation — the dominant cost of exact analytics at large `n`).
fn bench_markov_rowbuild(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(2048u64, 8192, 32_768);
    let voter = Voter::new(1).expect("valid");
    let agg = AggregateChain::build(&voter, n, Opinion::One).expect("valid");
    let samples = (0..ctx.samples())
        .map(|_| {
            let agg = agg.clone();
            throughput(n as f64, move || {
                let chain = SparseChain::from_aggregate(agg, 1e-12);
                assert!(chain.nnz() > 0);
            })
        })
        .collect();
    BenchResult { id: "markov_rowbuild".to_string(), unit: "rows_per_sec", samples }
}

/// Sparse matvec throughput: stored transition entries consumed per second
/// while stepping a full state distribution through the truncated operator
/// (the inner loop of exact survival curves and distribution stepping).
fn bench_markov_matvec(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(2048u64, 8192, 32_768);
    let iters = ctx.scale.pick(20u64, 40, 60);
    let chain = SparseChain::build(&Voter::new(1).expect("valid"), n, Opinion::One).expect("valid");
    let m = chain.num_states();
    let lo = chain.state_lo();
    #[allow(clippy::cast_precision_loss)]
    let samples = (0..ctx.samples())
        .map(|_| {
            // A uniform start keeps every row active on every iteration, so
            // the work is exactly `iters · nnz` multiply-adds.
            let mut dist = vec![1.0 / m as f64; m];
            let mut next = vec![0.0; m];
            throughput((iters * chain.nnz() as u64) as f64, || {
                for _ in 0..iters {
                    next.fill(0.0);
                    for (i, &w) in dist.iter().enumerate() {
                        let (abs_lo, row) = chain.row(lo + i as u64);
                        let base = (abs_lo - lo) as usize;
                        for (slot, &p) in next[base..base + row.len()].iter_mut().zip(row) {
                            *slot += w * p;
                        }
                    }
                    std::mem::swap(&mut dist, &mut next);
                }
                assert!(dist.iter().sum::<f64>() > 0.5);
            })
        })
        .collect();
    BenchResult { id: "markov_matvec".to_string(), unit: "nnz_per_sec", samples }
}

/// Compiled-kernel adoption-probability evaluations per second.
///
/// Sweeps `p` across a dense grid so the benchmark covers both Horner
/// branches (`p ≤ ½` and `p > ½`) of the scaled-Bernstein evaluation; the
/// accumulated sum is black-boxed so the loop cannot be elided.
fn bench_kernel_eval(ctx: &BenchCtx, ell: usize) -> BenchResult {
    let evals = ctx.scale.pick(200_000u64, 1_000_000, 5_000_000);
    let minority = Minority::new(ell).expect("odd ell >= 1");
    let kernel = minority.to_table(4096).expect("valid").compile().expect("compiles");
    let samples = (0..ctx.samples())
        .map(|_| {
            throughput(evals as f64, || {
                let mut acc = 0.0f64;
                for i in 0..evals {
                    let p = (i % 1025) as f64 / 1024.0;
                    let (p0, p1) = kernel.eval(p);
                    acc += p0 + p1;
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    BenchResult { id: format!("kernel_eval_l{ell}"), unit: "evals_per_sec", samples }
}

/// Lock-step batched replication rounds per second (total across the
/// batch): the default convergence-sweep engine at its natural workload —
/// many replicas of a hovering Minority chain sharing one kernel and one
/// sampler-setup memo.
fn bench_batched_rounds(ctx: &BenchCtx) -> BenchResult {
    let n = ctx.scale.pick(1024u64, 4096, 16_384);
    let rounds = ctx.scale.pick(200u64, 1000, 5000);
    let reps = 32usize;
    let minority = Minority::new(5).expect("odd ell >= 1");
    let kernel = Arc::new(minority.to_table(n).expect("valid").compile().expect("compiles"));
    let start = Configuration::new(n, Opinion::One, n / 2).expect("x0 <= n");
    let samples = (0..ctx.samples())
        .map(|i| {
            let seeds: Vec<u64> = (0..reps)
                .map(|rep| replication_seed(ctx.seed ^ 0xBA7C, (i * reps + rep) as u64))
                .collect();
            let mut batch = BatchedAggregateSim::new(Arc::clone(&kernel), start, &seeds);
            throughput((rounds * reps as u64) as f64, || {
                for _ in 0..rounds {
                    batch.step_round();
                }
                assert_eq!(batch.round(), rounds);
            })
        })
        .collect();
    BenchResult { id: "batched_rounds".to_string(), unit: "rounds_per_sec", samples }
}

/// Replications per second through the worker pool at `workers` workers.
fn bench_pool_scaling(ctx: &BenchCtx, workers: usize) -> BenchResult {
    let n = ctx.scale.pick(512u64, 1024, 2048);
    let reps = ctx.scale.pick(16usize, 48, 96);
    let rounds_per_rep = ctx.scale.pick(100u64, 300, 1000);
    let voter = Voter::new(1).expect("ell >= 1");
    let start = Configuration::all_wrong(n, Opinion::One);
    let samples = (0..ctx.samples())
        .map(|_| {
            throughput(reps as f64, || {
                // Fixed-length runs (not run-to-consensus) so every
                // replication carries identical work and the measurement
                // isolates pool overhead + parallel speedup.
                let out = replicate(reps, ctx.seed ^ 2, Some(workers), |mut rng, _| {
                    let mut sim = AggregateSim::new(&voter, start).expect("valid protocol");
                    for _ in 0..rounds_per_rep {
                        sim.step_round(&mut rng);
                    }
                    sim.configuration().ones()
                });
                assert_eq!(out.len(), reps);
            })
        })
        .collect();
    BenchResult { id: format!("pool_scaling_w{workers}"), unit: "reps_per_sec", samples }
}

/// Checkpoint-log records per second against a real file.
///
/// Each sample writes to a fresh file in the system temp directory and
/// removes it afterwards; failures to set the file up are reported as an
/// empty sample list rather than a panic (benches must not take the CLI
/// down on a read-only temp dir).
fn bench_checkpoint_write(ctx: &BenchCtx) -> BenchResult {
    let records = ctx.scale.pick(1000u64, 5000, 20_000);
    let mut samples = Vec::with_capacity(ctx.samples());
    for i in 0..ctx.samples() {
        let path = std::env::temp_dir().join(format!(
            "bitdissem-bench-ckpt-{}-{}-{i}.jsonl",
            std::process::id(),
            ctx.seed
        ));
        let Ok(log) = CheckpointLog::open(&path) else {
            continue;
        };
        samples.push(throughput(records as f64, || {
            for r in 0..records {
                log.record(&format!("bench:rep#{r}"), "c:123");
            }
        }));
        let _ = std::fs::remove_file(&path);
    }
    BenchResult { id: "checkpoint_write".to_string(), unit: "records_per_sec", samples }
}

/// Trace-sink events per second against a real file: the per-event
/// overhead a traced run pays on the emit path, for the JSONL debug sink
/// and the binary columnar sink. The workload is a round-event stream
/// punctuated by replication results — the shape a convergence sweep
/// produces. Setup failures yield an empty sample list, like
/// [`bench_checkpoint_write`].
fn bench_sink_overhead(ctx: &BenchCtx, format: TraceFormat) -> BenchResult {
    let events = ctx.scale.pick(50_000u64, 200_000, 1_000_000);
    let id = match format {
        TraceFormat::Jsonl => "jsonl_sink",
        TraceFormat::Columnar => "columnar_sink",
    };
    let mut samples = Vec::with_capacity(ctx.samples());
    for i in 0..ctx.samples() {
        let path = std::env::temp_dir().join(format!(
            "bitdissem-bench-sink-{id}-{}-{}-{i}",
            std::process::id(),
            ctx.seed
        ));
        let sink: Box<dyn EventSink> = match format {
            TraceFormat::Jsonl => match JsonlSink::create(&path) {
                Ok(s) => Box::new(s),
                Err(_) => continue,
            },
            TraceFormat::Columnar => match ColumnarSink::create(&path) {
                Ok(s) => Box::new(s),
                Err(_) => continue,
            },
        };
        samples.push(throughput(events as f64, || {
            for e in 0..events {
                if e % 512 == 511 {
                    sink.emit(&Event::ReplicationFinished {
                        rep: e / 512,
                        outcome: bitdissem_obs::ReplicationOutcome::Converged,
                        rounds: 511,
                        elapsed_us: e,
                    });
                } else {
                    sink.emit(&Event::RoundCompleted {
                        rep: e / 512,
                        round: e % 512,
                        ones: e % 97,
                        source_opinion: 1,
                    });
                }
            }
            sink.flush();
        }));
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
    BenchResult { id: id.to_string(), unit: "events_per_sec", samples }
}

/// Runs the full benchmark suite, in a stable order. Each benchmark runs
/// under an [`Obs::span`] so `--metrics` surfaces its wall-clock share.
#[must_use]
pub fn run_all(ctx: &BenchCtx, obs: &Obs) -> Vec<BenchResult> {
    let mut results = Vec::new();
    {
        let _span = obs.span("bench/agent_step");
        results.push(bench_agent_step(ctx));
    }
    {
        let _span = obs.span("bench/aggregate_rounds");
        results.push(bench_aggregate_rounds(ctx));
    }
    for ell in [3, 5] {
        // One function, two ids: the telemetry-overhead budget is a
        // *relative* claim, so the off/on legs alternate sample-by-sample
        // inside bench_aggregate_vs_telemetry — on a busy (or
        // single-core) host, drift between distant suite slots would
        // otherwise dominate the ≤2% margin this pair gates.
        let _span = obs.span("bench/aggregate_vs_telemetry");
        let (base, instrumented) = bench_aggregate_vs_telemetry(ctx, ell);
        results.push(base);
        results.push(instrumented);
    }
    for ell in [3, 5] {
        let _span = obs.span("bench/kernel_eval");
        results.push(bench_kernel_eval(ctx, ell));
    }
    {
        let _span = obs.span("bench/batched_rounds");
        results.push(bench_batched_rounds(ctx));
    }
    {
        let _span = obs.span("bench/simd_rounds");
        results.push(bench_simd_rounds(ctx));
    }
    {
        let _span = obs.span("bench/sharded_rounds");
        results.push(bench_sharded_rounds(ctx));
    }
    {
        let _span = obs.span("bench/markov_rowbuild");
        results.push(bench_markov_rowbuild(ctx));
    }
    {
        let _span = obs.span("bench/markov_matvec");
        results.push(bench_markov_matvec(ctx));
    }
    for workers in worker_counts(ctx.max_workers) {
        let _span = obs.span("bench/pool_scaling");
        results.push(bench_pool_scaling(ctx, workers));
    }
    {
        let _span = obs.span("bench/checkpoint_write");
        results.push(bench_checkpoint_write(ctx));
    }
    for format in [TraceFormat::Jsonl, TraceFormat::Columnar] {
        let _span = obs.span("bench/sink_overhead");
        results.push(bench_sink_overhead(ctx, format));
    }
    if let Some(progress) = obs.progress() {
        progress.tick(results.len() as u64);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_are_powers_of_two_plus_max() {
        assert_eq!(worker_counts(1), vec![1]);
        assert_eq!(worker_counts(2), vec![1, 2]);
        assert_eq!(worker_counts(4), vec![1, 2, 4]);
        assert_eq!(worker_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(worker_counts(0), vec![1], "max is clamped to 1");
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        let t = throughput(100.0, || std::hint::black_box(()));
        assert!(t.is_finite() && t > 0.0, "t = {t}");
    }

    #[test]
    fn smoke_suite_covers_every_benchmark() {
        let ctx = BenchCtx::new(Scale::Smoke, 42, 2);
        let results = run_all(&ctx, &Obs::none());
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "agent_step",
                "aggregate_rounds",
                "aggregate_rounds_l3",
                "telemetry_overhead_l3",
                "aggregate_rounds_l5",
                "telemetry_overhead_l5",
                "kernel_eval_l3",
                "kernel_eval_l5",
                "batched_rounds",
                "simd_rounds",
                "sharded_rounds",
                "markov_rowbuild",
                "markov_matvec",
                "pool_scaling_w1",
                "pool_scaling_w2",
                "checkpoint_write",
                "jsonl_sink",
                "columnar_sink"
            ]
        );
        for r in &results {
            // The aggregate-vs-telemetry pair takes 5x samples: it gates
            // a ≤2% overhead budget, which needs tighter medians.
            let expected = if r.id.starts_with("aggregate_rounds_l")
                || r.id.starts_with("telemetry_overhead_l")
            {
                15
            } else {
                3
            };
            assert_eq!(r.samples.len(), expected, "{}: smoke sample count", r.id);
            assert!(
                r.samples.iter().all(|s| s.is_finite() && *s > 0.0),
                "{}: throughputs must be positive, got {:?}",
                r.id,
                r.samples
            );
            assert!(r.unit.ends_with("_per_sec"), "{}: unit {} is a rate", r.id, r.unit);
        }
    }
}
