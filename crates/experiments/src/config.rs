//! Run configuration shared by all experiments.

use serde::{Deserialize, Serialize};

/// How much work an experiment run should do.
///
/// * `Smoke` — seconds-scale, used by tests and CI: small `n`, few
///   replications; verifies mechanics and directional expectations only.
/// * `Standard` — the default for example binaries and Criterion benches.
/// * `Full` — the scale used to produce the tables in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale smoke run.
    Smoke,
    /// Default scale for examples and benches.
    Standard,
    /// Publication scale (minutes).
    Full,
}

impl Scale {
    /// Picks one of three values by scale.
    #[must_use]
    pub fn pick<T: Copy>(self, smoke: T, standard: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Standard => standard,
            Scale::Full => full,
        }
    }

    /// The lowercase scale name, as accepted by [`Scale::from_str`] and
    /// recorded in run manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Standard => "standard",
            Scale::Full => "full",
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Ok(Scale::Smoke),
            "standard" => Ok(Scale::Standard),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (smoke|standard|full)")),
        }
    }
}

/// Which engine drives replicated aggregate-chain convergence batches.
///
/// The batched and per-replica engines are bit-identical per replication
/// (each replication's RNG derives from its index alone), so the choice
/// between them affects throughput only —
/// `workload::tests::engines_agree_bit_for_bit` pins the equivalence. The
/// wide engine draws from counter-based streams instead and is equivalent
/// in law but **not** bit-comparable; the conformance KS gates admit it
/// against the reference backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplicationEngine {
    /// Lock-step batched simulation: chunks of replicas advance round by
    /// round through a shared kernel and sampler-setup memo. The fast
    /// default.
    #[default]
    Batched,
    /// One simulator per replication over the generic pool path. Kept as
    /// the executable reference the batched engine is proven against.
    PerReplica,
    /// Counter-rng lane engine: fused one-word alias draws, sharded over
    /// the pool. The throughput engine for large sweeps (KS-gated, not
    /// bit-identical to the other two).
    Wide,
}

impl ReplicationEngine {
    /// The lowercase engine name, as accepted by
    /// [`ReplicationEngine::from_str`] and recorded in run output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplicationEngine::Batched => "batched",
            ReplicationEngine::PerReplica => "per-replica",
            ReplicationEngine::Wide => "wide",
        }
    }
}

impl std::fmt::Display for ReplicationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ReplicationEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "batched" => Ok(ReplicationEngine::Batched),
            "per-replica" | "per_replica" | "perreplica" => Ok(ReplicationEngine::PerReplica),
            "wide" | "simd" => Ok(ReplicationEngine::Wide),
            other => Err(format!("unknown engine '{other}' (batched|per-replica|wide)")),
        }
    }
}

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Work scale.
    pub scale: Scale,
    /// Base seed; all randomness is derived from it deterministically.
    pub seed: u64,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Replication engine for aggregate convergence batches.
    #[serde(default)]
    pub engine: ReplicationEngine,
    /// Environment perturbation schedule applied between rounds (`None`
    /// means the static, unperturbed process). Recorded in run manifests
    /// and in checkpoint batch kinds.
    #[serde(default)]
    pub env: Option<bitdissem_sim::EnvSchedule>,
}

impl RunConfig {
    /// A smoke-scale configuration.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self::with_scale(Scale::Smoke, seed)
    }

    /// A standard-scale configuration.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self::with_scale(Scale::Standard, seed)
    }

    /// A full-scale configuration.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self::with_scale(Scale::Full, seed)
    }

    fn with_scale(scale: Scale, seed: u64) -> Self {
        Self { scale, seed, threads: None, engine: ReplicationEngine::default(), env: None }
    }

    /// Switches the replication engine (builder-style).
    #[must_use]
    pub fn with_engine(mut self, engine: ReplicationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs an environment perturbation schedule (builder-style). An
    /// inert schedule is normalized back to `None`.
    #[must_use]
    pub fn with_env(mut self, env: bitdissem_sim::EnvSchedule) -> Self {
        self.env = (!env.is_inert()).then_some(env);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Standard.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::from_str("smoke").unwrap(), Scale::Smoke);
        assert_eq!(Scale::from_str("FULL").unwrap(), Scale::Full);
        assert!(Scale::from_str("bogus").is_err());
    }

    #[test]
    fn scale_name_round_trips_through_from_str() {
        for scale in [Scale::Smoke, Scale::Standard, Scale::Full] {
            assert_eq!(Scale::from_str(scale.name()).unwrap(), scale);
            assert_eq!(scale.to_string(), scale.name());
        }
    }

    #[test]
    fn constructors() {
        assert_eq!(RunConfig::smoke(7).scale, Scale::Smoke);
        assert_eq!(RunConfig::standard(7).scale, Scale::Standard);
        assert_eq!(RunConfig::full(7).seed, 7);
        assert_eq!(RunConfig::smoke(7).engine, ReplicationEngine::Batched);
        assert_eq!(
            RunConfig::smoke(7).with_engine(ReplicationEngine::PerReplica).engine,
            ReplicationEngine::PerReplica
        );
    }

    #[test]
    fn env_builder_and_serde_default() {
        assert_eq!(RunConfig::smoke(7).env, None);
        let env: bitdissem_sim::EnvSchedule = "flip@10".parse().unwrap();
        assert_eq!(RunConfig::smoke(7).with_env(env).env, Some(env));
        assert_eq!(
            RunConfig::smoke(7).with_env(bitdissem_sim::EnvSchedule::default()).env,
            None,
            "an inert schedule normalizes to None"
        );
    }

    #[test]
    fn engine_parses_and_round_trips() {
        for engine in
            [ReplicationEngine::Batched, ReplicationEngine::PerReplica, ReplicationEngine::Wide]
        {
            assert_eq!(ReplicationEngine::from_str(engine.name()).unwrap(), engine);
            assert_eq!(engine.to_string(), engine.name());
        }
        assert_eq!(
            ReplicationEngine::from_str("per_replica").unwrap(),
            ReplicationEngine::PerReplica
        );
        assert_eq!(ReplicationEngine::from_str("simd").unwrap(), ReplicationEngine::Wide);
        assert!(ReplicationEngine::from_str("bogus").is_err());
    }
}
