//! Shared measurement helpers: replicated convergence and crossing times.
//!
//! When the observability handle carries a checkpoint log, the replicated
//! helpers run **checkpointed**: each replication's outcome is keyed by
//! `<kind>:<g-table-fingerprint>:<batch-params>#<rep>` (namespaced per
//! experiment by the registry), cached results are loaded instead of
//! re-simulated, and fresh results are recorded as they complete. Because
//! every replication derives its RNG from its index alone, splicing cached
//! and fresh results is bit-identical to an uninterrupted run.

use std::sync::Arc;

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::{Configuration, GTable, Kernel, Opinion, Protocol, ProtocolExt};
use bitdissem_obs::{GaugeId, Obs};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::batched::{replicate_batched_env_observed, replicate_batched_observed};
use bitdissem_sim::env::EnvSchedule;
use bitdissem_sim::run::{
    run_to_consensus_env_observed, run_to_consensus_observed, Outcome, Simulator,
};
use bitdissem_sim::runner::replicate_indices_observed;
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_sim::wide::{replicate_wide_env_observed, replicate_wide_observed};
use bitdissem_stats::Summary;

use crate::config::ReplicationEngine;

/// A batch of replicated convergence outcomes.
#[derive(Debug, Clone)]
pub struct OutcomeBatch {
    outcomes: Vec<Outcome>,
    budget: u64,
}

impl OutcomeBatch {
    /// Wraps raw outcomes measured under the given round budget.
    #[must_use]
    pub fn new(outcomes: Vec<Outcome>, budget: u64) -> Self {
        Self { outcomes, budget }
    }

    /// Number of replications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` for an empty batch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The round budget the runs were censored at.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The raw outcomes, in replication order.
    #[must_use]
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Fraction of replications that converged within `bound` rounds.
    #[must_use]
    pub fn fraction_within(&self, bound: f64) -> f64 {
        let c = self
            .outcomes
            .iter()
            .filter(|o| o.rounds().is_some_and(|r| (r as f64) <= bound))
            .count();
        c as f64 / self.outcomes.len().max(1) as f64
    }

    /// Fraction of replications that converged within the budget.
    #[must_use]
    pub fn converged_fraction(&self) -> f64 {
        let c = self.outcomes.iter().filter(|o| o.is_converged()).count();
        c as f64 / self.outcomes.len().max(1) as f64
    }

    /// Right-censored summary (timeouts counted at the budget). The median
    /// is exact as long as fewer than half of the runs timed out.
    #[must_use]
    pub fn censored_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> = self.outcomes.iter().map(|o| o.rounds_censored() as f64).collect();
        Summary::from_samples(&xs)
    }

    /// Summary over converged runs only, or `None` if none converged.
    #[must_use]
    pub fn converged_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> =
            self.outcomes.iter().filter_map(|o| o.rounds().map(|r| r as f64)).collect();
        Summary::from_samples(&xs)
    }
}

/// FNV-1a over the materialized table's sample size and g-value bit
/// patterns: two protocols share a fingerprint iff they induce the same
/// decision table, which is exactly when their replications are
/// interchangeable.
fn table_fingerprint(table: &GTable) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(table.sample_size() as u64);
    for k in 0..=table.sample_size() {
        mix(table.g(Opinion::Zero, k).to_bits());
        mix(table.g(Opinion::One, k).to_bits());
    }
    h
}

/// Builds the per-batch checkpoint key base (everything but the `#rep`
/// suffix): the kind tag, the protocol's table fingerprint, and every
/// parameter the outcome depends on.
fn batch_key<P>(kind: &str, protocol: &P, start: Configuration, budget: u64, seed: u64) -> String
where
    P: Protocol + Sync + ?Sized,
{
    let table = protocol.to_table(start.n()).expect("valid protocol");
    format!(
        "{kind}:{fp:016x}:n{n}:z{z}:x{x}:b{budget}:s{seed}",
        fp = table_fingerprint(&table),
        n = start.n(),
        z = start.correct().as_bit(),
        x = start.ones(),
    )
}

/// Emits a [`bitdissem_obs::Event::BatchStarted`] describing a replicated
/// batch: its kind, dimensions, seeds and the protocol's full `g`-table.
/// This is what makes a trace *self-describing* — an offline analyzer can
/// rebuild the protocol (a `GTable` is itself a `Protocol`) and check the
/// recorded trajectory against the paper's Prop-4/Prop-5 predictions
/// without knowing how the batch was constructed. Every event of the
/// batch follows it in the trace (batch calls block), so the next
/// `BatchStarted` line delimits it.
fn emit_batch_started<P>(
    obs: &Obs,
    kind: &str,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
) where
    P: Protocol + Sync + ?Sized,
{
    if !obs.active() {
        return;
    }
    let table = protocol.to_table(start.n()).expect("valid protocol");
    obs.emit(&bitdissem_obs::Event::BatchStarted {
        kind: kind.to_string(),
        protocol: protocol.name(),
        ell: table.sample_size() as u64,
        n: start.n(),
        x0: start.ones(),
        source_opinion: start.correct().as_bit(),
        reps: reps as u64,
        budget,
        seed,
        g0: table.g0().to_vec(),
        g1: table.g1().to_vec(),
    });
}

/// RAII gauge updates bracketing one replicated batch: bumps
/// `sweep_batches_started` on construction, tracks `inflight_replications`
/// around the engine call, and bumps `sweep_batches_done` on drop — so
/// the live telemetry view sees batch progress even mid-engine-call.
/// Inert when metrics are off.
struct BatchGauges<'a> {
    metrics: Option<&'a bitdissem_obs::Metrics>,
}

impl<'a> BatchGauges<'a> {
    fn start(obs: &'a Obs) -> Self {
        let metrics = obs.metrics_on().then(|| obs.metrics().as_ref());
        if let Some(m) = metrics {
            m.set_gauge(GaugeId::SweepBatchesTotal, m.gauge(GaugeId::SweepBatchesTotal) + 1);
        }
        BatchGauges { metrics }
    }

    fn set_inflight(&self, n: u64) {
        if let Some(m) = self.metrics {
            m.set_gauge(GaugeId::InflightReplications, n);
        }
    }
}

impl Drop for BatchGauges<'_> {
    fn drop(&mut self) {
        if let Some(m) = self.metrics {
            m.set_gauge(GaugeId::SweepBatchesDone, m.gauge(GaugeId::SweepBatchesDone) + 1);
        }
    }
}

fn encode_outcome(outcome: Outcome) -> String {
    match outcome {
        Outcome::Converged { rounds } => format!("c:{rounds}"),
        Outcome::TimedOut { rounds } => format!("t:{rounds}"),
    }
}

fn decode_outcome(payload: &str) -> Option<Outcome> {
    let (tag, rounds) = payload.split_once(':')?;
    let rounds = rounds.parse().ok()?;
    match tag {
        "c" => Some(Outcome::Converged { rounds }),
        "t" => Some(Outcome::TimedOut { rounds }),
        _ => None,
    }
}

/// Replicates with checkpointing when the handle carries a log: cached
/// replications are loaded (counted as `checkpoint_hits` and ticked on the
/// progress meter), only the missing indices go through `run_missing`, and
/// fresh outcomes are recorded under `<key_base()>#<rep>`. Without a log
/// the whole index range runs through `run_missing` directly.
///
/// `run_missing` receives replication indices and must return their
/// outcomes **in the order of the indices** — both replication engines
/// (the per-replica pool path and the lock-step batched path) satisfy
/// this, and both derive every replication's RNG from its index alone, so
/// splicing cached and fresh results is bit-identical to an uninterrupted
/// run.
fn replicate_checkpointed<K, R>(obs: &Obs, key_base: K, reps: usize, run_missing: R) -> Vec<Outcome>
where
    K: FnOnce() -> String,
    R: FnOnce(&[usize]) -> Vec<Outcome>,
{
    // Batch lifecycle gauges for the live telemetry view: count the batch
    // as started up front, mark the fresh replications in flight around
    // the engine call, and count the batch done on the way out.
    let gauges = BatchGauges::start(obs);
    let run_missing = |missing: &[usize]| {
        gauges.set_inflight(missing.len() as u64);
        let fresh = run_missing(missing);
        gauges.set_inflight(0);
        fresh
    };
    let Some(log) = obs.checkpoint().cloned() else {
        let all: Vec<usize> = (0..reps).collect();
        return run_missing(&all);
    };
    let key_base = key_base();
    let keys: Vec<String> =
        (0..reps).map(|rep| obs.checkpoint_key(&format!("{key_base}#{rep}"))).collect();
    let mut slots: Vec<Option<Outcome>> =
        keys.iter().map(|k| log.lookup(k).and_then(|p| decode_outcome(&p))).collect();

    let cached = slots.iter().filter(|s| s.is_some()).count() as u64;
    if cached > 0 {
        if obs.metrics_on() {
            obs.metrics().add_checkpoint_hits(cached);
        }
        if let Some(progress) = obs.progress() {
            progress.tick(cached);
        }
    }

    let missing: Vec<usize> = (0..reps).filter(|&rep| slots[rep].is_none()).collect();
    let fresh = run_missing(&missing);
    for (&rep, &outcome) in missing.iter().zip(&fresh) {
        log.record(&keys[rep], &encode_outcome(outcome));
        slots[rep] = Some(outcome);
    }
    slots.into_iter().map(|s| s.expect("every replication slot is filled")).collect()
}

/// Compiles the protocol's decision table into the shared adoption kernel
/// once per batch — both engines evaluate the same kernel, and no
/// replication re-materializes the table.
fn compile_kernel<P>(protocol: &P, n: u64) -> Arc<Kernel>
where
    P: Protocol + ?Sized,
{
    Arc::new(
        protocol.to_table(n).expect("valid protocol").compile().expect("validated table compiles"),
    )
}

/// Measures convergence times of `protocol` from `start` over `reps`
/// replications with a per-run budget of `budget` rounds, using the
/// aggregate exact-chain simulator.
#[must_use]
pub fn measure_convergence<P>(
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_observed(&Obs::none(), protocol, start, reps, budget, seed, threads)
}

/// [`measure_convergence`] with an observability handle: each replication
/// emits per-round and per-replication trace events and contributes to the
/// run counters. Outcomes are identical to the unobserved call for the
/// same seed. Runs on the default (batched) engine; use
/// [`measure_convergence_engine_observed`] to select explicitly.
#[must_use]
pub fn measure_convergence_observed<P>(
    obs: &Obs,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_engine_observed(
        obs,
        ReplicationEngine::default(),
        protocol,
        start,
        reps,
        budget,
        seed,
        threads,
    )
}

/// [`measure_convergence_observed`] with an explicit replication engine.
///
/// Every engine shares one compiled adoption [`Kernel`] (no per-replica
/// table materialization) and derives each replication's randomness from
/// its index alone, so the outcome vector is bit-deterministic across
/// thread counts and checkpoint splicing. The batched and per-replica
/// engines are additionally bit-identical to *each other*; the wide engine
/// draws from counter-based streams (equivalent in law, KS-gated in
/// conformance) and therefore checkpoints under a distinct batch-key kind
/// — cached outcomes never splice across the stream boundary.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn measure_convergence_engine_observed<P>(
    obs: &Obs,
    engine: ReplicationEngine,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_inner(obs, engine, None, protocol, start, reps, budget, seed, threads)
}

/// [`measure_convergence_engine_observed`] under an environment schedule:
/// every replication perturbs between rounds per `env`, on any engine. An
/// inert schedule degenerates to the static measurement (same checkpoint
/// kind, same outcomes); an active one checkpoints under the env-suffixed
/// kinds `conv+env[<fp>]` / `conv+wide+env[<fp>]`, so cached static-run
/// outcomes can never splice into a dynamic sweep on resume (or vice
/// versa).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn measure_convergence_env_observed<P>(
    obs: &Obs,
    engine: ReplicationEngine,
    env: &EnvSchedule,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    let env = (!env.is_inert()).then_some(env);
    measure_convergence_inner(obs, engine, env, protocol, start, reps, budget, seed, threads)
}

#[allow(clippy::too_many_arguments)]
fn measure_convergence_inner<P>(
    obs: &Obs,
    engine: ReplicationEngine,
    env: Option<&EnvSchedule>,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    // The wide engine's draws come from a different randomness stream, and
    // an active environment schedule changes the law outright — each gets
    // its own checkpoint kind so caches never splice across either
    // boundary.
    let kind = match (engine == ReplicationEngine::Wide, env) {
        (false, None) => "conv".to_string(),
        (true, None) => "conv+wide".to_string(),
        (false, Some(env)) => format!("conv+env[{}]", env.fingerprint()),
        (true, Some(env)) => format!("conv+wide+env[{}]", env.fingerprint()),
    };
    // Trace headers: static batches stay "conv" whatever the engine (the
    // offline trace checker validates any "conv" batch against the static
    // law); env batches advertise their schedule so the checker skips them
    // — a perturbed trajectory does not follow the unperturbed law.
    let emit_kind = if env.is_some() { kind.as_str() } else { "conv" };
    emit_batch_started(obs, emit_kind, protocol, start, reps, budget, seed);
    let kernel = compile_kernel(protocol, start.n());
    let key_base = || batch_key(&kind, protocol, start, budget, seed);
    let outcomes = match engine {
        ReplicationEngine::Batched => {
            replicate_checkpointed(obs, key_base, reps, |missing| match env {
                Some(env) => replicate_batched_env_observed(
                    &kernel, start, missing, seed, threads, budget, env, obs,
                ),
                None => {
                    replicate_batched_observed(&kernel, start, missing, seed, threads, budget, obs)
                }
            })
        }
        ReplicationEngine::PerReplica => replicate_checkpointed(obs, key_base, reps, |missing| {
            replicate_indices_observed(missing, seed, threads, obs, |mut rng, rep| {
                let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), start);
                match env {
                    Some(env) => run_to_consensus_env_observed(
                        &mut sim, env, &mut rng, budget, obs, rep as u64,
                    ),
                    None => run_to_consensus_observed(&mut sim, &mut rng, budget, obs, rep as u64),
                }
            })
        }),
        ReplicationEngine::Wide => {
            replicate_checkpointed(obs, key_base, reps, |missing| match env {
                Some(env) => replicate_wide_env_observed(
                    &kernel, start, missing, seed, threads, budget, env, obs,
                ),
                None => {
                    replicate_wide_observed(&kernel, start, missing, seed, threads, budget, obs)
                }
            })
        }
    };
    OutcomeBatch::new(outcomes, budget)
}

/// Measures convergence in the **sequential** setting (times in parallel
/// rounds: one round = `n` activations).
#[must_use]
pub fn measure_convergence_sequential<P>(
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget_rounds: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_sequential_observed(
        &Obs::none(),
        protocol,
        start,
        reps,
        budget_rounds,
        seed,
        threads,
    )
}

/// [`measure_convergence_sequential`] with an observability handle.
#[must_use]
pub fn measure_convergence_sequential_observed<P>(
    obs: &Obs,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget_rounds: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    emit_batch_started(obs, "seqconv", protocol, start, reps, budget_rounds, seed);
    let outcomes = replicate_checkpointed(
        obs,
        || batch_key("seqconv", protocol, start, budget_rounds, seed),
        reps,
        |missing| {
            replicate_indices_observed(missing, seed, threads, obs, |mut rng, rep| {
                let mut sim = SequentialSim::new(protocol, start).expect("valid protocol");
                run_to_consensus_observed(&mut sim, &mut rng, budget_rounds, obs, rep as u64)
            })
        },
    );
    OutcomeBatch::new(outcomes, budget_rounds)
}

/// Measures the first time the process crosses the witness threshold (the
/// quantity Theorem 6 bounds from below), right-censored at `budget`.
/// Returns one censored crossing time per replication plus the converged
/// flag batch for reference.
#[must_use]
pub fn measure_crossing<P>(
    protocol: &P,
    witness: &LowerBoundWitness,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> Vec<Outcome>
where
    P: Protocol + Sync + ?Sized,
{
    measure_crossing_observed(&Obs::none(), protocol, witness, reps, budget, seed, threads)
}

/// [`measure_crossing`] with an observability handle (progress ticks and
/// stream counters; crossing runs emit no per-round events since the
/// stopping rule differs from consensus).
#[must_use]
pub fn measure_crossing_observed<P>(
    obs: &Obs,
    protocol: &P,
    witness: &LowerBoundWitness,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> Vec<Outcome>
where
    P: Protocol + Sync + ?Sized,
{
    emit_batch_started(obs, "cross", protocol, witness.start(), reps, budget, seed);
    let kernel = compile_kernel(protocol, witness.start().n());
    replicate_checkpointed(
        obs,
        || batch_key("cross", protocol, witness.start(), budget, seed),
        reps,
        |missing| {
            replicate_indices_observed(missing, seed, threads, obs, |mut rng, _| {
                let mut sim = AggregateSim::with_kernel(Arc::clone(&kernel), witness.start());
                for t in 0..=budget {
                    if witness.crossed(sim.configuration().ones()) {
                        return Outcome::Converged { rounds: t };
                    }
                    if t == budget {
                        break;
                    }
                    sim.step_round(&mut rng);
                }
                Outcome::TimedOut { rounds: budget }
            })
        },
    )
}

/// Geometric sweep of population sizes `start·2^k`, `k = 0..count`.
#[must_use]
pub fn pow2_sweep(start: u64, count: usize) -> Vec<u64> {
    (0..count).map(|k| start << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Stay, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn batch_statistics() {
        let b = OutcomeBatch::new(
            vec![
                Outcome::Converged { rounds: 10 },
                Outcome::Converged { rounds: 20 },
                Outcome::TimedOut { rounds: 100 },
                Outcome::Converged { rounds: 30 },
            ],
            100,
        );
        assert_eq!(b.len(), 4);
        assert!((b.converged_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(b.budget(), 100);
        let cens = b.censored_summary().unwrap();
        assert_eq!(cens.median(), 25.0);
        let conv = b.converged_summary().unwrap();
        assert_eq!(conv.mean(), 20.0);
        assert!(!b.is_empty());
    }

    #[test]
    fn measure_convergence_voter_smoke() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(32, Opinion::One);
        let b = measure_convergence(&voter, start, 6, 100_000, 1, Some(2));
        assert_eq!(b.len(), 6);
        assert!((b.converged_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_convergence_is_deterministic() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let a = measure_convergence(&voter, start, 5, 100_000, 9, Some(1));
        let b = measure_convergence(&voter, start, 5, 100_000, 9, Some(4));
        let av: Vec<_> = a.outcomes.iter().map(Outcome::rounds_censored).collect();
        let bv: Vec<_> = b.outcomes.iter().map(Outcome::rounds_censored).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn stay_never_crosses() {
        let stay = Stay::new(1);
        let w = LowerBoundWitness::construct(&stay, 64).unwrap();
        let xs = measure_crossing(&stay, &w, 3, 50, 2, Some(1));
        assert!(xs.iter().all(|o| !o.is_converged()));
    }

    #[test]
    fn sweep_is_geometric() {
        assert_eq!(pow2_sweep(128, 3), vec![128, 256, 512]);
    }

    #[test]
    fn outcome_payloads_round_trip() {
        for outcome in [Outcome::Converged { rounds: 42 }, Outcome::TimedOut { rounds: 9 }] {
            assert_eq!(decode_outcome(&encode_outcome(outcome)), Some(outcome));
        }
        assert_eq!(decode_outcome("x:1"), None);
        assert_eq!(decode_outcome("c:notanumber"), None);
        assert_eq!(decode_outcome(""), None);
    }

    #[test]
    fn table_fingerprint_separates_protocols() {
        use bitdissem_core::dynamics::Minority;
        let v1 = table_fingerprint(&Voter::new(1).unwrap().to_table(64).unwrap());
        let v3 = table_fingerprint(&Voter::new(3).unwrap().to_table(64).unwrap());
        let m3 = table_fingerprint(&Minority::new(3).unwrap().to_table(64).unwrap());
        assert_ne!(v1, v3, "sample size must enter the fingerprint");
        assert_ne!(v3, m3, "g-values must enter the fingerprint");
        let again = table_fingerprint(&Voter::new(1).unwrap().to_table(64).unwrap());
        assert_eq!(v1, again, "fingerprint is deterministic");
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        use bitdissem_obs::CheckpointLog;
        use std::sync::Arc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let plain = measure_convergence(&voter, start, 8, 100_000, 5, Some(2));

        let log = Arc::new(CheckpointLog::in_memory());
        let obs = Obs::none().with_metrics().with_checkpoint(Arc::clone(&log));
        let fresh = measure_convergence_observed(&obs, &voter, start, 8, 100_000, 5, Some(2));
        assert_eq!(fresh.outcomes(), plain.outcomes());
        assert_eq!(log.len(), 8, "every replication was recorded");
        assert_eq!(obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed), 0);

        // Second run over the same log: all replications load from cache
        // and the batch stays bit-identical.
        let resumed = measure_convergence_observed(&obs, &voter, start, 8, 100_000, 5, Some(4));
        assert_eq!(resumed.outcomes(), plain.outcomes());
        assert_eq!(obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed), 8);
    }

    #[test]
    fn partially_checkpointed_run_splices_cached_and_fresh() {
        use bitdissem_obs::CheckpointLog;
        use std::sync::Arc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let full = measure_convergence(&voter, start, 10, 100_000, 7, Some(2));

        // Simulate an interrupted sweep: only the first 4 replications made
        // it into the log.
        let log = Arc::new(CheckpointLog::in_memory());
        let obs = Obs::none().with_metrics().with_checkpoint(Arc::clone(&log));
        let _ = measure_convergence_observed(&obs, &voter, start, 4, 100_000, 7, Some(2));
        assert_eq!(log.len(), 4);

        let resumed = measure_convergence_observed(&obs, &voter, start, 10, 100_000, 7, Some(3));
        assert_eq!(resumed.outcomes(), full.outcomes());
        assert_eq!(obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed), 4);
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn observed_batch_emits_self_describing_header() {
        use bitdissem_obs::{Event, MemorySink};
        use std::sync::Arc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::none().with_sink(Arc::clone(&sink) as Arc<dyn bitdissem_obs::EventSink>);
        let _ = measure_convergence_observed(&obs, &voter, start, 3, 100_000, 11, Some(1));

        let events = sink.events();
        let Some(Event::BatchStarted {
            kind,
            protocol,
            ell,
            n,
            x0,
            source_opinion,
            reps,
            budget,
            seed,
            g0,
            g1,
        }) = events.first()
        else {
            panic!("first event must be the batch header, got {:?}", events.first());
        };
        assert_eq!(kind, "conv");
        assert_eq!(protocol, &voter.name());
        assert_eq!((*ell, *n, *x0), (1, 24, 1));
        assert_eq!((*source_opinion, *reps, *budget, *seed), (1, 3, 100_000, 11));
        // Voter ℓ=1: adopt the sampled opinion, g(z, k) = k/ℓ.
        assert_eq!(g0, &vec![0.0, 1.0]);
        assert_eq!(g1, &vec![0.0, 1.0]);
        // The header can rebuild the protocol for offline conformance
        // checks: the round events that follow must belong to `reps` runs.
        let finished =
            events.iter().filter(|e| matches!(e, Event::ReplicationFinished { .. })).count();
        assert_eq!(finished, 3);
    }

    #[test]
    fn observed_batch_passes_trace_conformance() {
        use bitdissem_obs::MemorySink;
        use std::sync::Arc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(48, Opinion::One);
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::none().with_sink(Arc::clone(&sink) as Arc<dyn bitdissem_obs::EventSink>);
        let _ = measure_convergence_observed(&obs, &voter, start, 10, 100_000, 3, Some(2));

        let analysis = crate::trace::analyze(&sink.events(), 0);
        assert_eq!(analysis.batches.len(), 1);
        let batch = &analysis.batches[0];
        assert_eq!(batch.replications, 10);
        let conf = batch.conformance.as_ref().expect("conv batch is checkable");
        assert!(conf.adjacent_pairs > 0);
        assert!(!analysis.has_violations(), "{}", analysis.render());
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        // The batched default and the per-replica reference engine must
        // produce identical outcome vectors — the engine is a throughput
        // knob, never a semantics knob.
        use bitdissem_core::dynamics::Minority;
        let minority = Minority::new(3).unwrap();
        let start = Configuration::new(128, Opinion::One, 40).unwrap();
        let obs = Obs::none();
        let batched = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Batched,
            &minority,
            start,
            12,
            200_000,
            21,
            Some(3),
        );
        let reference = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::PerReplica,
            &minority,
            start,
            12,
            200_000,
            21,
            Some(2),
        );
        assert_eq!(batched.outcomes(), reference.outcomes());
    }

    #[test]
    fn batched_checkpointing_splices_against_per_replica_cache() {
        // A sweep checkpointed under one engine must resume correctly
        // under the other: cached outcomes splice with freshly batched
        // ones because both derive each replication from its index alone.
        use bitdissem_obs::CheckpointLog;
        use std::sync::Arc as StdArc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let full = measure_convergence(&voter, start, 10, 100_000, 7, Some(2));

        let log = StdArc::new(CheckpointLog::in_memory());
        let obs = Obs::none().with_metrics().with_checkpoint(StdArc::clone(&log));
        let _ = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::PerReplica,
            &voter,
            start,
            4,
            100_000,
            7,
            Some(2),
        );
        assert_eq!(log.len(), 4);

        let resumed = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Batched,
            &voter,
            start,
            10,
            100_000,
            7,
            Some(3),
        );
        assert_eq!(resumed.outcomes(), full.outcomes());
        assert_eq!(obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed), 4);
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn wide_engine_is_deterministic_and_never_splices_other_engines() {
        // The wide engine draws from counter streams, so (a) its outcome
        // vector is identical for every thread count, and (b) its
        // checkpoints live under "conv+wide" — a cache written by the
        // batched engine must yield zero hits when resuming wide.
        use bitdissem_obs::CheckpointLog;
        use std::sync::Arc as StdArc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let obs = Obs::none();
        let wide_a = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Wide,
            &voter,
            start,
            10,
            100_000,
            7,
            Some(1),
        );
        let wide_b = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Wide,
            &voter,
            start,
            10,
            100_000,
            7,
            Some(3),
        );
        assert_eq!(wide_a.outcomes(), wide_b.outcomes());

        let log = StdArc::new(CheckpointLog::in_memory());
        let obs = Obs::none().with_metrics().with_checkpoint(StdArc::clone(&log));
        let _ = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Batched,
            &voter,
            start,
            10,
            100_000,
            7,
            Some(2),
        );
        assert_eq!(log.len(), 10);
        let wide_fresh = measure_convergence_engine_observed(
            &obs,
            ReplicationEngine::Wide,
            &voter,
            start,
            10,
            100_000,
            7,
            Some(2),
        );
        assert_eq!(
            obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "wide must not resume from another engine's cache"
        );
        assert_eq!(log.len(), 20, "wide appends its own records under conv+wide");
        assert_eq!(wide_fresh.outcomes(), wide_a.outcomes());
    }

    #[test]
    fn env_runs_never_splice_static_checkpoints() {
        // A static sweep's cached outcomes must be invisible to an
        // env-perturbed resume of the same cell (and distinct schedules
        // must be invisible to each other): the batch kind carries the env
        // fingerprint. A spliced static outcome would silently report
        // convergence times from a world without perturbations.
        use bitdissem_obs::CheckpointLog;
        use std::sync::Arc as StdArc;
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let env: EnvSchedule = "flip@50".parse().unwrap();

        let log = StdArc::new(CheckpointLog::in_memory());
        let obs = Obs::none().with_metrics().with_checkpoint(StdArc::clone(&log));
        let _ = measure_convergence_observed(&obs, &voter, start, 8, 100_000, 5, Some(2));
        assert_eq!(log.len(), 8);

        let hits = || obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed);
        let dynamic = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Batched,
            &env,
            &voter,
            start,
            8,
            100_000,
            5,
            Some(2),
        );
        assert_eq!(hits(), 0, "env run must not resume from the static cache");
        assert_eq!(log.len(), 16, "env outcomes append under their own kind");

        // A different schedule is a different kind again.
        let other: EnvSchedule = "noise:0.01".parse().unwrap();
        let _ = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Batched,
            &other,
            &voter,
            start,
            8,
            100_000,
            5,
            Some(2),
        );
        assert_eq!(hits(), 0, "schedules never share caches");
        assert_eq!(log.len(), 24);

        // Same schedule resumes from its own records, bit-identically.
        let resumed = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Batched,
            &env,
            &voter,
            start,
            8,
            100_000,
            5,
            Some(3),
        );
        assert_eq!(hits(), 8);
        assert_eq!(resumed.outcomes(), dynamic.outcomes());

        // An inert schedule is exactly the static measurement — same kind,
        // so it resumes from the static cache.
        let inert = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Batched,
            &EnvSchedule::default(),
            &voter,
            start,
            8,
            100_000,
            5,
            Some(2),
        );
        assert_eq!(hits(), 16);
        let plain = measure_convergence(&voter, start, 8, 100_000, 5, Some(2));
        assert_eq!(inert.outcomes(), plain.outcomes());
    }

    #[test]
    fn env_engines_agree_on_convergence_law_smoke() {
        // The env path is runnable on every engine; batched and
        // per-replica are bit-identical even under perturbations.
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let env: EnvSchedule = "reset:k=2@every:40".parse().unwrap();
        let obs = Obs::none();
        let batched = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Batched,
            &env,
            &voter,
            start,
            8,
            100_000,
            13,
            Some(2),
        );
        let reference = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::PerReplica,
            &env,
            &voter,
            start,
            8,
            100_000,
            13,
            Some(3),
        );
        assert_eq!(batched.outcomes(), reference.outcomes());
        let wide = measure_convergence_env_observed(
            &obs,
            ReplicationEngine::Wide,
            &env,
            &voter,
            start,
            8,
            100_000,
            13,
            Some(2),
        );
        assert_eq!(wide.len(), 8);
        assert!(wide.converged_fraction() > 0.0, "wide env runs converge too");
    }

    #[test]
    fn checkpoint_keys_differ_across_batch_parameters() {
        // A key collision would silently reuse a foreign result, so the
        // parameters that change an outcome must all enter the key.
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let base = batch_key("conv", &voter, start, 1000, 5);
        assert_ne!(base, batch_key("cross", &voter, start, 1000, 5));
        assert_ne!(base, batch_key("conv", &voter, start, 2000, 5));
        assert_ne!(base, batch_key("conv", &voter, start, 1000, 6));
        let other_start = Configuration::new(24, Opinion::One, 7).unwrap();
        assert_ne!(base, batch_key("conv", &voter, other_start, 1000, 5));
        let minority = bitdissem_core::dynamics::Minority::new(3).unwrap();
        assert_ne!(base, batch_key("conv", &minority, start, 1000, 5));
    }
}
