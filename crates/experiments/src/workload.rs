//! Shared measurement helpers: replicated convergence and crossing times.

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::{Configuration, Protocol};
use bitdissem_obs::Obs;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::{run_to_consensus_observed, Outcome, Simulator};
use bitdissem_sim::runner::replicate_observed;
use bitdissem_sim::sequential::SequentialSim;
use bitdissem_stats::Summary;

/// A batch of replicated convergence outcomes.
#[derive(Debug, Clone)]
pub struct OutcomeBatch {
    outcomes: Vec<Outcome>,
    budget: u64,
}

impl OutcomeBatch {
    /// Wraps raw outcomes measured under the given round budget.
    #[must_use]
    pub fn new(outcomes: Vec<Outcome>, budget: u64) -> Self {
        Self { outcomes, budget }
    }

    /// Number of replications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` for an empty batch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The round budget the runs were censored at.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The raw outcomes, in replication order.
    #[must_use]
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Fraction of replications that converged within `bound` rounds.
    #[must_use]
    pub fn fraction_within(&self, bound: f64) -> f64 {
        let c = self
            .outcomes
            .iter()
            .filter(|o| o.rounds().is_some_and(|r| (r as f64) <= bound))
            .count();
        c as f64 / self.outcomes.len().max(1) as f64
    }

    /// Fraction of replications that converged within the budget.
    #[must_use]
    pub fn converged_fraction(&self) -> f64 {
        let c = self.outcomes.iter().filter(|o| o.is_converged()).count();
        c as f64 / self.outcomes.len().max(1) as f64
    }

    /// Right-censored summary (timeouts counted at the budget). The median
    /// is exact as long as fewer than half of the runs timed out.
    #[must_use]
    pub fn censored_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> = self.outcomes.iter().map(|o| o.rounds_censored() as f64).collect();
        Summary::from_samples(&xs)
    }

    /// Summary over converged runs only, or `None` if none converged.
    #[must_use]
    pub fn converged_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> =
            self.outcomes.iter().filter_map(|o| o.rounds().map(|r| r as f64)).collect();
        Summary::from_samples(&xs)
    }
}

/// Measures convergence times of `protocol` from `start` over `reps`
/// replications with a per-run budget of `budget` rounds, using the
/// aggregate exact-chain simulator.
#[must_use]
pub fn measure_convergence<P>(
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_observed(&Obs::none(), protocol, start, reps, budget, seed, threads)
}

/// [`measure_convergence`] with an observability handle: each replication
/// emits per-round and per-replication trace events and contributes to the
/// run counters. Outcomes are identical to the unobserved call for the
/// same seed.
#[must_use]
pub fn measure_convergence_observed<P>(
    obs: &Obs,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    let outcomes = replicate_observed(reps, seed, threads, obs, |mut rng, rep| {
        let mut sim = AggregateSim::new(protocol, start).expect("valid protocol");
        run_to_consensus_observed(&mut sim, &mut rng, budget, obs, rep as u64)
    });
    OutcomeBatch::new(outcomes, budget)
}

/// Measures convergence in the **sequential** setting (times in parallel
/// rounds: one round = `n` activations).
#[must_use]
pub fn measure_convergence_sequential<P>(
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget_rounds: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    measure_convergence_sequential_observed(
        &Obs::none(),
        protocol,
        start,
        reps,
        budget_rounds,
        seed,
        threads,
    )
}

/// [`measure_convergence_sequential`] with an observability handle.
#[must_use]
pub fn measure_convergence_sequential_observed<P>(
    obs: &Obs,
    protocol: &P,
    start: Configuration,
    reps: usize,
    budget_rounds: u64,
    seed: u64,
    threads: Option<usize>,
) -> OutcomeBatch
where
    P: Protocol + Sync + ?Sized,
{
    let outcomes = replicate_observed(reps, seed, threads, obs, |mut rng, rep| {
        let mut sim = SequentialSim::new(protocol, start).expect("valid protocol");
        run_to_consensus_observed(&mut sim, &mut rng, budget_rounds, obs, rep as u64)
    });
    OutcomeBatch::new(outcomes, budget_rounds)
}

/// Measures the first time the process crosses the witness threshold (the
/// quantity Theorem 6 bounds from below), right-censored at `budget`.
/// Returns one censored crossing time per replication plus the converged
/// flag batch for reference.
#[must_use]
pub fn measure_crossing<P>(
    protocol: &P,
    witness: &LowerBoundWitness,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> Vec<Outcome>
where
    P: Protocol + Sync + ?Sized,
{
    measure_crossing_observed(&Obs::none(), protocol, witness, reps, budget, seed, threads)
}

/// [`measure_crossing`] with an observability handle (progress ticks and
/// stream counters; crossing runs emit no per-round events since the
/// stopping rule differs from consensus).
#[must_use]
pub fn measure_crossing_observed<P>(
    obs: &Obs,
    protocol: &P,
    witness: &LowerBoundWitness,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> Vec<Outcome>
where
    P: Protocol + Sync + ?Sized,
{
    replicate_observed(reps, seed, threads, obs, |mut rng, _| {
        let mut sim = AggregateSim::new(protocol, witness.start()).expect("valid protocol");
        for t in 0..=budget {
            if witness.crossed(sim.configuration().ones()) {
                return Outcome::Converged { rounds: t };
            }
            if t == budget {
                break;
            }
            sim.step_round(&mut rng);
        }
        Outcome::TimedOut { rounds: budget }
    })
}

/// Geometric sweep of population sizes `start·2^k`, `k = 0..count`.
#[must_use]
pub fn pow2_sweep(start: u64, count: usize) -> Vec<u64> {
    (0..count).map(|k| start << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitdissem_core::dynamics::{Stay, Voter};
    use bitdissem_core::Opinion;

    #[test]
    fn batch_statistics() {
        let b = OutcomeBatch::new(
            vec![
                Outcome::Converged { rounds: 10 },
                Outcome::Converged { rounds: 20 },
                Outcome::TimedOut { rounds: 100 },
                Outcome::Converged { rounds: 30 },
            ],
            100,
        );
        assert_eq!(b.len(), 4);
        assert!((b.converged_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(b.budget(), 100);
        let cens = b.censored_summary().unwrap();
        assert_eq!(cens.median(), 25.0);
        let conv = b.converged_summary().unwrap();
        assert_eq!(conv.mean(), 20.0);
        assert!(!b.is_empty());
    }

    #[test]
    fn measure_convergence_voter_smoke() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(32, Opinion::One);
        let b = measure_convergence(&voter, start, 6, 100_000, 1, Some(2));
        assert_eq!(b.len(), 6);
        assert!((b.converged_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_convergence_is_deterministic() {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(24, Opinion::One);
        let a = measure_convergence(&voter, start, 5, 100_000, 9, Some(1));
        let b = measure_convergence(&voter, start, 5, 100_000, 9, Some(4));
        let av: Vec<_> = a.outcomes.iter().map(Outcome::rounds_censored).collect();
        let bv: Vec<_> = b.outcomes.iter().map(Outcome::rounds_censored).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn stay_never_crosses() {
        let stay = Stay::new(1);
        let w = LowerBoundWitness::construct(&stay, 64).unwrap();
        let xs = measure_crossing(&stay, &w, 3, 50, 2, Some(1));
        assert!(xs.iter().all(|o| !o.is_converged()));
    }

    #[test]
    fn sweep_is_geometric() {
        assert_eq!(pow2_sweep(128, 3), vec![128, 256, 512]);
    }
}
