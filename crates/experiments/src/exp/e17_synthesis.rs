//! **E17 — protocol synthesis: even the optimal protocol is slow.**
//!
//! Theorem 1 quantifies over *every* memory-less protocol with constant
//! `ℓ`. This experiment probes that universality constructively: at a small
//! population size we search the table space for the protocol minimizing
//! the exact worst-case expected convergence time, then re-evaluate the
//! synthesized protocol at growing `n` — its worst-case time keeps scaling
//! (at least) almost-linearly, exactly as the theorem demands of *any*
//! protocol.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Protocol, ProtocolExt};
use bitdissem_markov::optimize::{synthesize, worst_case_objective};
use bitdissem_stats::regression::fit_power_law;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E17.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e17");
    let mut report = ExperimentReport::new(
        "e17",
        "protocol synthesis: optimizing the decision table does not escape the bound",
        "Theorem 1 holds for every protocol; a table optimized (exactly) for \
         worst-case convergence at small n must still scale almost-linearly",
    );

    let search_n: u64 = cfg.scale.pick(12, 20, 24);
    let restarts = cfg.scale.pick(2, 4, 6);
    let eval_ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![16, 32, 64],
        1 => vec![16, 32, 64, 128],
        _ => vec![32, 64, 128, 256],
    };
    let ells = [2usize, 3];

    for &ell in &ells {
        let synth = synthesize(ell, search_n, restarts);
        let voter_obj = worst_case_objective(
            &Voter::new(ell).expect("valid").to_table(search_n).expect("valid"),
            search_n,
        );
        let minority_obj = worst_case_objective(
            &Minority::new(ell).expect("valid").to_table(search_n).expect("valid"),
            search_n,
        );

        let mut head = Table::new(["protocol", "worst E[T] at search n", "table g(k)"]);
        let fmt_table = |g: &[f64]| -> String {
            g.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ")
        };
        head.row([synth.table.name(), fmt_num(synth.objective), fmt_table(synth.table.g0())]);
        head.row([
            format!("voter(l={ell})"),
            fmt_num(voter_obj),
            fmt_table(&(0..=ell).map(|k| k as f64 / ell as f64).collect::<Vec<_>>()),
        ]);
        head.row([
            format!("minority(l={ell})"),
            if minority_obj.is_finite() { fmt_num(minority_obj) } else { "inf".into() },
            "-".to_string(),
        ]);
        report.add_table(
            format!(
                "l = {ell}: search at n = {search_n} ({} exact evaluations)",
                synth.evaluations
            ),
            head,
        );
        report.check(
            synth.objective <= voter_obj + 1e-6,
            format!(
                "l={ell}: synthesized protocol is at least as good as the Voter \
                 ({:.1} vs {:.1})",
                synth.objective, voter_obj
            ),
        );

        // Scaling of the synthesized protocol.
        let mut scaling = Table::new(["n", "worst E[T] (exact)", "E[T]/n"]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &eval_ns {
            let obj = worst_case_objective(&synth.table, n);
            scaling.row([
                n.to_string(),
                fmt_num(obj),
                if obj.is_finite() { fmt_num(obj / n as f64) } else { "inf".into() },
            ]);
            if obj.is_finite() {
                xs.push(n as f64);
                ys.push(obj.max(1.0));
            }
        }
        report.add_table(format!("l = {ell}: synthesized protocol across n"), scaling);
        if let Some((b, _c, r2)) = fit_power_law(&xs, &ys) {
            report.check(
                b >= 0.6,
                format!(
                    "l={ell}: the optimized protocol still scales like n^{b:.2} \
                     (R2 = {r2:.3}) — Theorem 1 is not escapable by tuning the table"
                ),
            );
        } else {
            report.check(false, format!("l={ell}: scaling fit failed"));
        }
        // Sanity: the synthesized protocol keeps the Prop-3 endpoints.
        report.check(
            synth.table.check_proposition3(search_n).is_ok(),
            format!("l={ell}: synthesized table satisfies Proposition 3"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_synthesis_cannot_beat_theorem1() {
        let report = run(&RunConfig::smoke(83), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
