//! **E4 — the open question: the minimal sample size for a fast Minority.**
//!
//! The paper leaves a gap between its lower bound (`ℓ = O(1)` is slow) and
//! the `ℓ = Ω(√(n log n))` upper bound of \[15\], remarking that "simulations
//! suggest that its convergence might be fast even when the sample size is
//! qualitatively small". This sweep measures the Minority convergence time
//! at fixed `n` as a function of `ℓ` and locates the empirical crossover
//! where it drops from almost-linear to poly-logarithmic — far below
//! `√(n ln n)`, consistent with the paper's remark.

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::dynamics::Minority;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{measure_convergence_observed, OutcomeBatch};
use bitdissem_obs::Obs;

/// Runs experiment E4.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e4");
    let mut report = ExperimentReport::new(
        "e4",
        "Minority convergence vs sample size (fixed n)",
        "Open question (Sec. 1.2/5): the minimal l for poly-log convergence is \
         unknown; the paper notes simulations suggest fast convergence well \
         below sqrt(n log n)",
    );

    let ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![256],
        1 => vec![4096],
        _ => vec![4096, 16384],
    };
    let reps = cfg.scale.pick(5, 15, 25);

    for &n in &ns {
        let fast_ell = Minority::fast_sample_size(n);
        let mut ells: Vec<usize> = vec![1, 3, 5, 9, 17, 33, 65, 129, 257];
        ells.retain(|&e| e < fast_ell);
        ells.push(fast_ell);
        let polylog = (n as f64).ln().powi(2);
        // Budget: enough to distinguish "almost-linear" from "polylog" but
        // bounded so slow configurations do not dominate the runtime.
        let budget = 8 * n;

        let mut table = Table::new(["l", "median T", "frac converged", "T/ln^2 n", "regime"]);
        let mut crossover: Option<usize> = None;
        let mut slow_at_small_ell = false;
        for &ell in &ells {
            let minority = Minority::new(ell).expect("valid");
            // Start from the adversarial witness configuration so small-l
            // runs exhibit the Theorem-1 slowness.
            let witness = LowerBoundWitness::construct(&minority, n).expect("valid");
            let batch: OutcomeBatch = measure_convergence_observed(
                obs,
                &minority,
                witness.start(),
                reps,
                budget,
                cfg.seed ^ n ^ (ell as u64).rotate_left(17),
                cfg.threads,
            );
            let s = batch.censored_summary().expect("non-empty");
            let median = s.median();
            let fast = median <= 20.0 * polylog && batch.converged_fraction() > 0.5;
            if fast && crossover.is_none() {
                crossover = Some(ell);
            }
            if ell <= 5 && median > 0.05 * n as f64 {
                slow_at_small_ell = true;
            }
            table.row([
                ell.to_string(),
                fmt_num(median),
                fmt_num(batch.converged_fraction()),
                fmt_num(median / polylog),
                if fast { "fast".to_string() } else { "slow".to_string() },
            ]);
        }
        report.add_table(format!("n = {n} (sqrt(n ln n) = {fast_ell})"), table);
        report.check(
            slow_at_small_ell,
            format!("n={n}: constant l is slow (Theorem 1 regime observed)"),
        );
        match crossover {
            Some(ell) => {
                report.check(
                    ell < fast_ell,
                    format!(
                        "n={n}: empirical fast-regime crossover at l ~ {ell}, \
                         well below sqrt(n ln n) = {fast_ell}"
                    ),
                );
            }
            None => report.check(false, format!("n={n}: no fast regime found up to l={fast_ell}")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_locates_crossover() {
        let report = run(&RunConfig::smoke(17), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
