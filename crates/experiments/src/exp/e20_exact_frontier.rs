//! **E20 — the Theorem 2 / Theorem 12 frontier, charted exactly.**
//!
//! Theorem 2 says Voter with `ℓ = 1` converges in `O(n log n)` parallel
//! rounds; Theorem 12 says *any* memory-less protocol with constant sample
//! size needs `n^(1−ε)`-many. Simulation can only probe this frontier
//! statistically and only at moderate `n`; the ε-truncated sparse chain
//! computes both sides of it *exactly* at `n` in the tens of thousands:
//!
//! * the Voter worst-case expected hitting time, whose ratio to `n ln n`
//!   must stay bounded (upper-bound side);
//! * the Minority(3) survival probability from the all-wrong start at a
//!   sublinear budget `⌈n^0.9⌉`, which must stay ≈ 1 (lower-bound side —
//!   almost no mass converges below the almost-linear horizon);
//! * agreement of the sparse solver with the dense LU solver at small `n`,
//!   so the large-`n` curves inherit the dense solver's validation.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::Opinion;
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::{
    expected_hitting_times_sparse, survival_curve_sparse, AggregateChain, SparseChain,
};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E20.
#[must_use]
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
#[allow(clippy::cast_sign_loss, clippy::missing_panics_doc)]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e20");
    let mut report = ExperimentReport::new(
        "e20",
        "Theorem 2 vs Theorem 12: the exact convergence frontier at large n",
        "Voter worst-case expected time stays O(n log n) while Minority(3) \
         keeps ~all survival mass at sublinear budgets; both computed \
         exactly from the sparse chain",
    );

    let ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![256, 512, 1024],
        1 => vec![512, 2048, 8192],
        _ => vec![2048, 8192, 32_768],
    };

    // Upper-bound side (Theorem 2): exact Voter worst-case hitting times.
    let mut table = Table::new([
        "n",
        "voter worst E[T]",
        "E[T]/(n ln n)",
        "minority(3) budget",
        "minority survival",
    ]);
    let mut ratios = Vec::with_capacity(ns.len());
    let mut min_survival = f64::INFINITY;
    for &n in &ns {
        let voter =
            SparseChain::build(&Voter::new(1).expect("valid"), n, Opinion::One).expect("valid");
        let times = expected_hitting_times_sparse(&voter).expect("voter absorbs");
        let (_, worst) = times.worst();
        let ratio = worst / (n as f64 * (n as f64).ln());
        ratios.push(ratio);

        // Lower-bound side (Theorem 12): survival mass of the slow protocol
        // at a sublinear budget. Minority(3) has constant sample size, so
        // the almost-linear lower bound applies; at ⌈n^0.9⌉ rounds the
        // exact absorbed mass must still be negligible.
        let budget = (n as f64).powf(0.9).ceil() as usize;
        let minority =
            SparseChain::build(&Minority::new(3).expect("valid"), n, Opinion::One).expect("valid");
        let curve = survival_curve_sparse(&minority, minority.state_lo(), budget);
        let survival = *curve.last().expect("non-empty curve");
        min_survival = min_survival.min(survival);

        table.row([
            n.to_string(),
            fmt_num(worst),
            format!("{ratio:.4}"),
            budget.to_string(),
            format!("{survival:.6}"),
        ]);
    }
    report.add_table("exact frontier: Voter upper bound vs Minority lower bound", table);

    let max_ratio = ratios.iter().copied().fold(0.0f64, f64::max);
    report.check(
        max_ratio < 1.0,
        format!("Voter worst E[T]/(n ln n) bounded: max ratio {max_ratio:.4} < 1"),
    );
    // The Voter time is Θ(n): the ratio to n ln n must *shrink* as n grows,
    // never grow — growth would contradict the Theorem 2 upper bound.
    let monotone = ratios.windows(2).all(|w| w[1] <= w[0] * 1.05);
    report.check(monotone, format!("ratio non-increasing along the n grid: {ratios:?}"));
    report.check(
        min_survival >= 0.99,
        format!("Minority(3) survival at budget n^0.9 stays ≥ 0.99 (min {min_survival:.6})"),
    );

    // Validation splice: at dense-solver sizes the sparse hitting times must
    // agree with the dense LU to far better than the ratios above resolve.
    let n_check = 192u64;
    let sparse =
        SparseChain::build(&Voter::new(1).expect("valid"), n_check, Opinion::One).expect("valid");
    let dense = AggregateChain::build(&Voter::new(1).expect("valid"), n_check, Opinion::One)
        .expect("valid");
    let ts = expected_hitting_times_sparse(&sparse).expect("voter absorbs");
    let td = expected_hitting_times(&dense).expect("voter absorbs");
    let worst_rel = ts
        .iter()
        .zip(td.iter())
        .map(|((_, a), (_, b))| if b == 0.0 { (a - b).abs() } else { (a - b).abs() / b })
        .fold(0.0f64, f64::max);
    report.check(
        worst_rel < 1e-9,
        format!("sparse vs dense hitting times at n = {n_check}: worst rel err {worst_rel:.2e}"),
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_charts_the_frontier() {
        let report = run(&RunConfig::smoke(41), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
