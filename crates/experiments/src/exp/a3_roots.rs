//! **A3 — ablation: Bernstein root isolation vs Sturm sequences.**
//!
//! The witness construction hinges on finding the roots of `F_n` reliably.
//! The primary isolator (Bernstein subdivision + Newton) is cross-checked
//! against Sturm-sequence counting on the named dynamics and on randomly
//! generated protocol tables, including near-degenerate ones.

use bitdissem_analysis::{BiasPolynomial, RootStructure};
use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, TwoChoices, Voter};
use bitdissem_core::{GTable, Protocol};
use bitdissem_sim::rng::rng_from;
use bitdissem_stats::Table;
use rand::Rng;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs ablation A3.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("a3");
    let mut report = ExperimentReport::new(
        "a3",
        "ablation: Bernstein root isolation vs Sturm counting",
        "design claim: sign-crossing roots of F_n are found exactly; the \
         independent Sturm count agrees on named and random protocols",
    );

    let n = 1024u64;
    let named: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Minority::new(5).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(Majority::new(4).expect("valid")),
        Box::new(TwoChoices::new()),
        Box::new(PowerVoter::new(4, 3.0).expect("valid")),
        Box::new(PowerVoter::new(4, 0.3).expect("valid")),
    ];

    let mut table = Table::new(["protocol", "bernstein #roots", "sturm #roots", "agree"]);
    let mut all_agree = true;
    for protocol in &named {
        let f = BiasPolynomial::build(protocol, n).expect("valid");
        let rs = RootStructure::analyze(&f);
        let sturm = RootStructure::sturm_root_count(&f);
        let agree = rs.roots().len() == sturm;
        all_agree &= agree;
        table.row([
            protocol.name(),
            rs.roots().len().to_string(),
            sturm.to_string(),
            if agree { "yes".to_string() } else { "NO".to_string() },
        ]);
    }
    report.add_table("named dynamics", table);
    report.check(all_agree, "Bernstein and Sturm agree on every named dynamics");

    // Random own-independent tables with absorbing endpoints.
    let trials = cfg.scale.pick(50usize, 300, 1000);
    let mut rng = rng_from(cfg.seed ^ 0xA3);
    let mut agreements = 0usize;
    let mut disagreements = Vec::new();
    for trial in 0..trials {
        let ell = rng.random_range(1..=6usize);
        let mut g: Vec<f64> = (0..=ell).map(|_| rng.random::<f64>()).collect();
        g[0] = 0.0;
        g[ell] = 1.0;
        let table = GTable::symmetric(g).expect("valid probabilities");
        let f = BiasPolynomial::from_table(&table, n, format!("random-{trial}"));
        let rs = RootStructure::analyze(&f);
        let sturm = RootStructure::sturm_root_count(&f);
        // Sturm counts distinct roots including tangential ones; the
        // Bernstein isolator reports sign crossings only, so it may
        // undercount by tangential roots — never overcount.
        if rs.roots().len() == sturm {
            agreements += 1;
        } else if rs.roots().len() > sturm {
            disagreements.push(trial);
        }
    }
    let agree_rate = agreements as f64 / trials as f64;
    let mut rand_table = Table::new(["quantity", "value"]);
    rand_table.row(["random tables tried", &trials.to_string()]);
    rand_table.row(["exact agreement rate", &format!("{agree_rate:.3}")]);
    rand_table.row(["overcounts (bug indicator)", &disagreements.len().to_string()]);
    report.add_table("random protocol tables", rand_table);
    // Near-degenerate tables (root clusters at the 1e-6 scale) are counted
    // differently by the two methods depending on tolerances — in either
    // direction. A small disagreement rate is expected; a systematic one
    // would indicate a bug.
    let overcount_rate = disagreements.len() as f64 / trials as f64;
    report.check(
        overcount_rate <= 0.02,
        format!(
            "Bernstein overcounts vs Sturm on {:.1}% of random tables \
             (near-degenerate clusters only)",
            overcount_rate * 100.0
        ),
    );
    report.check(
        agree_rate > 0.9,
        format!("exact agreement on {:.0}% of random tables", agree_rate * 100.0),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_isolators_agree() {
        let report = run(&RunConfig::smoke(61), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
