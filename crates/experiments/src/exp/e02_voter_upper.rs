//! **E2 — Theorem 2: the Voter dynamics converges in `O(n log n)` rounds.**
//!
//! From the all-wrong configuration (only the source is correct), the Voter
//! convergence time is measured across a geometric `n` sweep. The theorem
//! predicts `τ ≤ 2n·ln n` w.h.p.; the measurable shape is a flat ratio
//! `τ / (n ln n)` and `n log n` winning the scaling-model comparison.

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_stats::regression::{compare_models, ScalingModel};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{measure_convergence_observed, pow2_sweep};
use bitdissem_obs::Obs;

/// Runs experiment E2.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e2");
    let mut report = ExperimentReport::new(
        "e2",
        "Voter upper bound from the all-wrong configuration",
        "Theorem 2: the Voter dynamics solves bit dissemination in O(n log n) \
         rounds w.h.p. (proof gives tau <= 2 n ln n)",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(32, 4),
        1 => pow2_sweep(128, 6),
        _ => pow2_sweep(256, 8),
    };
    let reps = cfg.scale.pick(30, 25, 50);
    // The voter convergence-time distribution is wide; at smoke sizes the
    // free-exponent estimate carries substantial noise.
    let (exp_lo, exp_hi) = cfg.scale.pick((0.65, 1.6), (0.8, 1.35), (0.85, 1.3));
    let voter = Voter::new(1).expect("valid");

    let mut table = Table::new(["n", "median T", "mean T", "T/(n ln n)", "P(T <= 2 n ln n)"]);
    let mut series_n = Vec::new();
    let mut series_t = Vec::new();
    let mut all_whp_ok = true;
    for &n in &ns {
        let start = Configuration::all_wrong(n, Opinion::One);
        let nlogn = n as f64 * (n as f64).ln();
        // Budget far above the 2 n ln n bound so timeouts are impossible
        // unless the theorem is badly violated.
        let budget = (8.0 * nlogn) as u64;
        let batch = measure_convergence_observed(
            obs,
            &voter,
            start,
            reps,
            budget,
            cfg.seed ^ n,
            cfg.threads,
        );
        let s = batch.censored_summary().expect("non-empty");
        let whp_frac = batch.fraction_within(2.0 * nlogn);
        all_whp_ok &= whp_frac >= 0.8;
        table.row([
            n.to_string(),
            fmt_num(s.median()),
            fmt_num(s.mean()),
            fmt_num(s.median() / nlogn),
            fmt_num(whp_frac),
        ]);
        series_n.push(n as f64);
        series_t.push(s.median().max(1.0));
    }
    report.add_table("Voter convergence times (parallel rounds)", table);

    if let Some(cmp) = compare_models(&series_n, &series_t) {
        let nlogn_competitive =
            matches!(cmp.best_fixed, ScalingModel::NLogN | ScalingModel::Linear);
        report.check(
            nlogn_competitive,
            format!(
                "best fixed scaling model: {} (free exponent {:.2})",
                cmp.best_fixed, cmp.power_law_exponent
            ),
        );
        report.check(
            cmp.power_law_exponent > exp_lo && cmp.power_law_exponent < exp_hi,
            format!("free power-law exponent {:.2} is ~1 (n log n)", cmp.power_law_exponent),
        );
    }
    report.check(all_whp_ok, "most runs finish within the 2 n ln n w.h.p. bound at every n");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_matches_n_log_n_shape() {
        let report = run(&RunConfig::smoke(11), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
