//! **E7 — Figure 4: the Voter dual process.**
//!
//! Appendix B proves Theorem 2 through `n` coalescing random walks running
//! backward in time, absorbed at the source: if all walks have coalesced
//! into the source within `T` rounds, the forward process has converged by
//! round `T`. This experiment runs the backward process directly and
//! compares its absorption time with the forward Voter convergence time:
//! both are `Θ(n log n)`, and the dual absorption time stochastically
//! dominates the forward time on average (it is the proof's upper bound).

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::dual::CoalescingDual;
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{measure_convergence_engine_observed, pow2_sweep};
use bitdissem_obs::Obs;

/// Runs experiment E7.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e7");
    let mut report = ExperimentReport::new(
        "e7",
        "Voter dual process: backward coalescing random walks (Figure 4)",
        "Appendix B: dual absorption within T implies forward consensus at T; \
         both times are Theta(n log n)",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(32, 3),
        1 => pow2_sweep(128, 5),
        _ => pow2_sweep(256, 7),
    };
    let reps = cfg.scale.pick(10, 25, 50);
    let voter = Voter::new(1).expect("valid");

    let mut table = Table::new([
        "n",
        "median dual",
        "median forward",
        "dual/(n ln n)",
        "forward/(n ln n)",
        "dual >= forward (medians)",
    ]);
    let mut dominated_everywhere = true;
    let mut dual_ratios = Vec::new();
    for &n in &ns {
        let nlogn = n as f64 * (n as f64).ln();
        let dual_times = replicate_observed(reps, cfg.seed ^ n, cfg.threads, obs, |mut rng, _| {
            let mut dual = CoalescingDual::new(n);
            dual.run_to_absorption(&mut rng, (20.0 * nlogn) as u64)
                .map_or(20.0 * nlogn, |t| t as f64)
        });
        let dual_summary = Summary::from_samples(&dual_times).expect("non-empty");

        let start = Configuration::all_wrong(n, Opinion::One);
        let forward = measure_convergence_engine_observed(
            obs,
            cfg.engine,
            &voter,
            start,
            reps,
            (20.0 * nlogn) as u64,
            cfg.seed ^ n ^ 0xD00D,
            cfg.threads,
        );
        let fwd_summary = forward.censored_summary().expect("non-empty");

        let dom = dual_summary.median() >= 0.5 * fwd_summary.median();
        dominated_everywhere &= dom;
        dual_ratios.push(dual_summary.median() / nlogn);
        table.row([
            n.to_string(),
            fmt_num(dual_summary.median()),
            fmt_num(fwd_summary.median()),
            fmt_num(dual_summary.median() / nlogn),
            fmt_num(fwd_summary.median() / nlogn),
            if dom { "yes".to_string() } else { "no".to_string() },
        ]);
    }
    report.add_table("dual vs forward Voter times (parallel rounds)", table);

    let first = dual_ratios.first().copied().unwrap_or(1.0).max(1e-9);
    let last = dual_ratios.last().copied().unwrap_or(1.0);
    report.check(
        last < 5.0 * first + 1.0 && last > first / 5.0,
        format!("dual/(n ln n) ratio is flat: {first:.2} -> {last:.2} (Theta(n log n))"),
    );
    report.check(
        dominated_everywhere,
        "dual absorption median is never far below the forward convergence median \
         (it upper-bounds the forward time in the proof)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_dual_matches_forward_scale() {
        let report = run(&RunConfig::smoke(29), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
