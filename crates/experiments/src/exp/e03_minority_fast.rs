//! **E3 — Minority with `ℓ = ⌈√(n ln n)⌉` converges in `O(log² n)` rounds.**
//!
//! Context result of Becchetti et al. (SODA 2024), reference \[15\] of the
//! paper: with a large sample, the Minority dynamics solves bit
//! dissemination poly-logarithmically fast — exponentially faster than any
//! constant-`ℓ` protocol (E1) and than any protocol in the sequential
//! setting (E11). The measurable shape: the ratio `τ / ln² n` stays bounded
//! and `log² n` wins the scaling comparison.

use bitdissem_core::dynamics::Minority;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_stats::regression::{compare_models, ScalingModel};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{measure_convergence_engine_observed, pow2_sweep};
use bitdissem_obs::Obs;

/// Runs experiment E3.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e3");
    let mut report = ExperimentReport::new(
        "e3",
        "Minority dynamics with the large sample size of [15]",
        "Becchetti et al. 2024: with l = Omega(sqrt(n log n)) the Minority \
         dynamics converges in O(log^2 n) rounds w.h.p.",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(128, 3),
        1 => pow2_sweep(512, 5),
        _ => pow2_sweep(1024, 6),
    };
    let reps = cfg.scale.pick(10, 25, 50);

    let mut table = Table::new(["n", "l", "median T", "T/ln^2 n", "frac converged"]);
    let mut series_n = Vec::new();
    let mut series_t = Vec::new();
    let mut ratios = Vec::new();
    for &n in &ns {
        let ell = Minority::fast_sample_size(n);
        let minority = Minority::new(ell).expect("valid");
        let start = Configuration::all_wrong(n, Opinion::One);
        let log2n = (n as f64).ln().powi(2);
        let budget = (100.0 * log2n) as u64;
        let batch = measure_convergence_engine_observed(
            obs,
            cfg.engine,
            &minority,
            start,
            reps,
            budget,
            cfg.seed ^ n,
            cfg.threads,
        );
        let s = batch.censored_summary().expect("non-empty");
        let ratio = s.median() / log2n;
        table.row([
            n.to_string(),
            ell.to_string(),
            fmt_num(s.median()),
            fmt_num(ratio),
            fmt_num(batch.converged_fraction()),
        ]);
        series_n.push(n as f64);
        series_t.push(s.median().max(1.0));
        ratios.push(ratio);
    }
    report.add_table("Minority convergence, l = ceil(sqrt(n ln n))", table);

    // Poly-logarithmic shape: the ratio must not grow like a power of n —
    // allow a generous constant factor between the smallest and largest n.
    let first = ratios.first().copied().unwrap_or(1.0).max(1e-9);
    let last = ratios.last().copied().unwrap_or(1.0);
    report.check(
        last <= 8.0 * first + 1.0,
        format!("T/ln^2 n ratio stays bounded: {first:.2} -> {last:.2}"),
    );
    if let Some(cmp) = compare_models(&series_n, &series_t) {
        report.check(
            cmp.best_fixed == ScalingModel::LogSquared,
            format!("best fixed scaling model: {}", cmp.best_fixed),
        );
        report.check(
            cmp.power_law_exponent < 0.5,
            format!("free exponent {:.2} << 1: strongly sub-polynomial", cmp.power_law_exponent),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_polylog_convergence() {
        let report = run(&RunConfig::smoke(13), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
