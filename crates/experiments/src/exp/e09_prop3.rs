//! **E9 — Proposition 3: consensus maintenance is necessary.**
//!
//! A protocol can only solve bit dissemination if `g⁰(0) = 0` and
//! `g¹(ℓ) = 1`. We check the static condition for a suite of protocols and
//! confirm the *dynamic* consequence empirically: compliant protocols stay
//! at the correct consensus forever once they reach it, while violators
//! provably leak out (consensus-exit detection), and `Stay` shows the
//! condition is not sufficient.

use bitdissem_core::dynamics::{AntiVoter, Minority, NoisyVoter, Stay, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol, ProtocolExt};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::{run_with_exit_detection_observed, StabilityOutcome};
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E9.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e9");
    let mut report = ExperimentReport::new(
        "e9",
        "Proposition 3: necessity of absorbing consensus",
        "Prop 3: any solving protocol has g0(0)=0 and g1(l)=1; violators \
         cannot keep a reached consensus (and Stay shows the condition is \
         not sufficient)",
    );

    let n: u64 = cfg.scale.pick(16, 32, 64);
    let dwell = cfg.scale.pick(2_000u64, 20_000, 100_000);
    let budget = cfg.scale.pick(50_000u64, 500_000, 2_000_000);

    struct Case {
        protocol: Box<dyn Protocol + Send + Sync>,
        expect_compliant: bool,
        expect_stable_if_reached: bool,
    }
    let cases = [
        Case {
            protocol: Box::new(Voter::new(1).expect("valid")),
            expect_compliant: true,
            expect_stable_if_reached: true,
        },
        Case {
            protocol: Box::new(Minority::new(3).expect("valid")),
            expect_compliant: true,
            expect_stable_if_reached: true,
        },
        Case {
            protocol: Box::new(NoisyVoter::new(1, 0.02).expect("valid")),
            expect_compliant: false,
            expect_stable_if_reached: false,
        },
        Case {
            protocol: Box::new(AntiVoter::new(3).expect("valid")),
            expect_compliant: false,
            expect_stable_if_reached: false,
        },
        Case {
            protocol: Box::new(Stay::new(1)),
            expect_compliant: true,
            // Stay never reaches consensus from a non-consensus start.
            expect_stable_if_reached: true,
        },
    ];

    let mut table = Table::new(["protocol", "prop3 static", "empirical outcome"]);
    for (case_idx, case) in cases.iter().enumerate() {
        let compliant = case.protocol.check_proposition3(n).is_ok();
        report.check(
            compliant == case.expect_compliant,
            format!(
                "{}: static Prop-3 check = {}",
                case.protocol.name(),
                if compliant { "compliant" } else { "violated" }
            ),
        );

        // Start AT the correct consensus: the dynamic content of Prop 3 is
        // that compliant protocols keep it forever, violators leak out.
        let start = Configuration::correct_consensus(n, Opinion::One);
        let mut sim = AggregateSim::new(&case.protocol, start).expect("valid");
        let mut rng = rng_from(cfg.seed ^ 0x9999);
        // Observed: dwell rounds enter the metrics and a consensus loss
        // emits a ConsensusExited trace event (one rep per protocol case).
        let outcome = run_with_exit_detection_observed(
            &mut sim,
            &mut rng,
            budget,
            dwell,
            obs,
            case_idx as u64,
        );
        let desc = match outcome {
            StabilityOutcome::Stable { entered } => format!("stable (entered at {entered})"),
            StabilityOutcome::Exited { entered, exited } => {
                format!("exited (entered {entered}, exited {exited})")
            }
            StabilityOutcome::NeverReached { .. } => "never reached".to_string(),
        };
        let dynamic_ok = match outcome {
            StabilityOutcome::Stable { .. } => case.expect_stable_if_reached,
            StabilityOutcome::Exited { .. } => !case.expect_stable_if_reached,
            // Impossible when starting at consensus.
            StabilityOutcome::NeverReached { .. } => false,
        };
        report.check(dynamic_ok, format!("{}: {desc}", case.protocol.name()));
        table.row([
            case.protocol.name(),
            if compliant { "ok".to_string() } else { "violated".to_string() },
            desc,
        ]);
    }
    report.add_table(format!("n = {n}, dwell = {dwell} rounds"), table);

    // Stay: Prop 3 compliant yet never converges — the condition is
    // necessary, not sufficient.
    let stay = Stay::new(1);
    let start = Configuration::new(n, Opinion::One, n / 2).expect("consistent");
    let mut sim = AggregateSim::new(&stay, start).expect("valid");
    let mut rng = rng_from(cfg.seed ^ 0xAAAA);
    let outcome =
        run_with_exit_detection_observed(&mut sim, &mut rng, 1_000, 10, obs, cases.len() as u64);
    report.check(
        matches!(outcome, StabilityOutcome::NeverReached { .. }),
        "Stay is compliant but never converges from a mixed start: Prop 3 is \
         necessary, not sufficient",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_validates_prop3_both_ways() {
        let report = run(&RunConfig::smoke(37), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
