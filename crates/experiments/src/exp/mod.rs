//! Individual experiment implementations. See `DESIGN.md` §3 for the index
//! mapping each module to the paper claim it reproduces.

pub mod a1_agg_vs_agent;
pub mod a2_binomial;
pub mod a3_roots;
pub mod e01_lower_bound;
pub mod e02_voter_upper;
pub mod e03_minority_fast;
pub mod e04_sample_sweep;
pub mod e05_bias_roots;
pub mod e06_doob;
pub mod e07_dual;
pub mod e08_jump;
pub mod e09_prop3;
pub mod e10_exact;
pub mod e11_seq_par;
pub mod e12_minority_consensus;
pub mod e13_memory;
pub mod e14_noise;
pub mod e15_sequential_lb;
pub mod e16_selfstab;
pub mod e17_synthesis;
pub mod e18_synchronicity;
pub mod e19_reconvergence;
pub mod e20_exact_frontier;
