//! **A2 — ablation: binomial sampler algorithms.**
//!
//! The aggregate simulator rests on the from-scratch binomial sampler
//! (naive Bernoulli sum, BINV inversion, BTRS transformed rejection). This
//! ablation measures each algorithm's accuracy in total variation against
//! the exact PMF, and its throughput, across the `(n, p)` regimes the
//! dispatcher assigns them.

use std::time::Instant;

use bitdissem_poly::binomial::binomial_pmf_vec;
use bitdissem_sim::binomial::{binv, btrs, sample_binomial, sample_binomial_naive};
use bitdissem_sim::rng::{rng_from, SimRng};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

fn tv_distance(samples: &[u64], n: u64, p: f64) -> f64 {
    let pmf = binomial_pmf_vec(n, p);
    let mut counts = vec![0u64; n as usize + 1];
    for &s in samples {
        counts[s as usize] += 1;
    }
    counts.iter().zip(&pmf).map(|(&c, &q)| (c as f64 / samples.len() as f64 - q).abs()).sum::<f64>()
        / 2.0
}

/// Runs ablation A2.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("a2");
    let mut report = ExperimentReport::new(
        "a2",
        "ablation: binomial sampler algorithms (naive / BINV / BTRS)",
        "design claim: BINV and BTRS sample the exact binomial law at O(np) \
         and O(1) expected cost; the naive summer is the ground truth",
    );

    let reps = cfg.scale.pick(30_000usize, 100_000, 400_000);
    // (n, p) cases covering both dispatcher regimes.
    let cases: Vec<(u64, f64)> = vec![(40, 0.08), (200, 0.02), (200, 0.4), (5000, 0.3)];

    let mut table = Table::new(["n", "p", "algorithm", "TV distance", "samples/sec"]);
    let mut max_tv: f64 = 0.0;
    for &(n, p) in &cases {
        type Sampler = (&'static str, Box<dyn Fn(&mut SimRng) -> u64>);
        let mut algorithms: Vec<Sampler> = vec![
            ("auto", Box::new(move |rng: &mut SimRng| sample_binomial(rng, n, p))),
            ("naive", Box::new(move |rng: &mut SimRng| sample_binomial_naive(rng, n, p))),
        ];
        if (n as f64) * p < 10.0 {
            algorithms.push(("binv", Box::new(move |rng: &mut SimRng| binv(rng, n, p))));
        } else if p <= 0.5 {
            algorithms.push(("btrs", Box::new(move |rng: &mut SimRng| btrs(rng, n, p))));
        }
        for (name, sampler) in &algorithms {
            let mut rng = rng_from(cfg.seed ^ n ^ ((p * 1e4) as u64));
            let begin = Instant::now();
            let samples: Vec<u64> = (0..reps).map(|_| sampler(&mut rng)).collect();
            let rate = reps as f64 / begin.elapsed().as_secs_f64();
            let tv = tv_distance(&samples, n, p);
            max_tv = max_tv.max(tv);
            table.row([n.to_string(), fmt_num(p), (*name).to_string(), fmt_num(tv), fmt_num(rate)]);
        }
    }
    report.add_table(format!("{reps} samples per cell"), table);
    // TV of an empirical distribution over k effective bins is
    // O(sqrt(k/reps)); 0.05 is a loose multiple of that for these cases.
    report.check(
        max_tv < 0.05,
        format!("all samplers within TV 0.05 of the exact PMF (max {max_tv:.4})"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_all_samplers_accurate() {
        let report = run(&RunConfig::smoke(59), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
