//! **E5 — Figures 2–3: bias polynomials, roots, and the Theorem 12 case
//! split.**
//!
//! For each protocol this regenerates the data behind the paper's proof
//! figures: the curve `F_n(p)` on a grid, its roots in `[0, 1]`, the
//! maximal constant-sign intervals, and the witness construction (case,
//! `(a₁, a₂, a₃)`, adversarial start). Cross-checked against Sturm-sequence
//! root counting.

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, TwoChoices, Voter};
use bitdissem_core::Protocol;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E5.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e5");
    let mut report = ExperimentReport::new(
        "e5",
        "bias-polynomial root structure and adversarial witness (Figures 2-3)",
        "Theorem 12: F_n has at most l+1 roots in [0,1]; the rightmost \
         constant-sign interval yields the adversarial configuration (Case 1 \
         if F<0 there, Case 2 if F>0; Lemma 11 if F=0)",
    );

    let n = cfg.scale.pick(256, 4096, 65536);
    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Voter::new(3).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Minority::new(5).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(TwoChoices::new()),
        Box::new(PowerVoter::new(3, 2.0).expect("valid")),
        Box::new(PowerVoter::new(3, 0.5).expect("valid")),
    ];

    let mut structure = Table::new([
        "protocol",
        "degree",
        "#roots",
        "sturm",
        "rightmost interval",
        "case",
        "X0/n",
        "threshold/n",
    ]);
    let mut curves = Table::new(["p", "voter", "minority3", "majority3", "power2.0"]);

    // Curve table on a fixed grid (the data behind Figures 2/3).
    let fv = BiasPolynomial::build(&Voter::new(1).expect("valid"), n).expect("valid");
    let fm = BiasPolynomial::build(&Minority::new(3).expect("valid"), n).expect("valid");
    let fj = BiasPolynomial::build(&Majority::new(3).expect("valid"), n).expect("valid");
    let fp = BiasPolynomial::build(&PowerVoter::new(3, 2.0).expect("valid"), n).expect("valid");
    for i in 0..=16 {
        let p = f64::from(i) / 16.0;
        curves.row([
            fmt_num(p),
            fmt_num(fv.eval(p)),
            fmt_num(fm.eval(p)),
            fmt_num(fj.eval(p)),
            fmt_num(fp.eval(p)),
        ]);
    }

    for protocol in &protocols {
        let f = BiasPolynomial::build(protocol, n).expect("valid");
        let rs = RootStructure::analyze(&f);
        let sturm = RootStructure::sturm_root_count(&f);
        let witness = LowerBoundWitness::from_bias(&f);
        let degree = f.as_polynomial().degree().map_or("0".to_string(), |d| d.to_string());
        let interval = rs
            .rightmost_interval()
            .map_or("-".to_string(), |(lo, hi, s)| format!("({lo:.3}, {hi:.3}) sign {s:+}"));
        structure.row([
            protocol.name(),
            degree,
            rs.roots().len().to_string(),
            sturm.to_string(),
            interval,
            witness.case().to_string(),
            fmt_num(witness.start().ones() as f64 / n as f64),
            fmt_num(witness.threshold() as f64 / n as f64),
        ]);
        // Degree bound of the core argument.
        let deg_ok = f.as_polynomial().degree().is_none_or(|d| d <= protocol.sample_size() + 1);
        report.check(deg_ok, format!("{}: deg F_n <= l+1", protocol.name()));
        report.check(
            rs.roots().len() == sturm,
            format!("{}: Bernstein and Sturm root counts agree", protocol.name()),
        );
    }

    report.add_table(format!("root structure and witness at n = {n}"), structure);
    report.add_table("F_n(p) curves (Figure 2/3 series)", curves);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_structure_is_consistent() {
        let report = run(&RunConfig::smoke(19), &Obs::none());
        assert!(report.pass, "{}", report.render());
        assert_eq!(report.tables.len(), 2);
        // 17 grid rows in the curve table.
        assert_eq!(report.tables[1].1.len(), 17);
    }
}
