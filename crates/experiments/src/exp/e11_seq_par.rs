//! **E11 — the sequential/parallel exponential gap.**
//!
//! Reference \[14\] proves that in the sequential setting no memory-less
//! protocol converges in fewer than `Ω(n)` parallel rounds in expectation,
//! *regardless of the sample size* — while the parallel setting admits
//! `O(log² n)` with the Minority dynamics and a large sample (\[15\]). This
//! experiment measures the same protocol in both settings and reports the
//! gap, which grows like `n / polylog(n)`.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, Opinion};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{
    measure_convergence_engine_observed, measure_convergence_sequential_observed, pow2_sweep,
};
use bitdissem_obs::Obs;

/// Runs experiment E11.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e11");
    let mut report = ExperimentReport::new(
        "e11",
        "sequential vs parallel activation (times in parallel rounds)",
        "[14]: sequential needs Omega(n) parallel rounds regardless of l; \
         [15]: parallel Minority with large l needs only O(log^2 n) — an \
         exponential separation",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(32, 2),
        1 => pow2_sweep(64, 3),
        _ => pow2_sweep(128, 4),
    };
    let reps = cfg.scale.pick(5, 10, 20);

    let mut table = Table::new([
        "n",
        "l (minority)",
        "par minority",
        "seq minority",
        "par voter",
        "seq voter",
        "gap (seq/par minority)",
    ]);
    let mut gaps = Vec::new();
    let mut seq_at_least_linearish = true;
    for &n in &ns {
        let ell = Minority::fast_sample_size(n);
        let minority = Minority::new(ell).expect("valid");
        let voter = Voter::new(1).expect("valid");
        let start = Configuration::all_wrong(n, Opinion::One);
        let nf = n as f64;
        let budget_par = (200.0 * nf.ln().powi(2)) as u64 + 8 * n;
        let budget_seq = 64 * n;

        let par_min = measure_convergence_engine_observed(
            obs,
            cfg.engine,
            &minority,
            start,
            reps,
            budget_par,
            cfg.seed ^ n,
            cfg.threads,
        );
        let seq_min = measure_convergence_sequential_observed(
            obs,
            &minority,
            start,
            reps,
            budget_seq,
            cfg.seed ^ n ^ 1,
            cfg.threads,
        );
        let par_vot = measure_convergence_engine_observed(
            obs,
            cfg.engine,
            &voter,
            start,
            reps,
            budget_seq,
            cfg.seed ^ n ^ 2,
            cfg.threads,
        );
        let seq_vot = measure_convergence_sequential_observed(
            obs,
            &voter,
            start,
            reps,
            budget_seq,
            cfg.seed ^ n ^ 3,
            cfg.threads,
        );

        let pm = par_min.censored_summary().expect("non-empty").median();
        let sm = seq_min.censored_summary().expect("non-empty").median();
        let pv = par_vot.censored_summary().expect("non-empty").median();
        let sv = seq_vot.censored_summary().expect("non-empty").median();
        let gap = sm / pm.max(1.0);
        gaps.push(gap);
        // [14]'s Ω(n) sequential bound (directional check with slack for
        // constants at small n).
        seq_at_least_linearish &= sm >= nf / 8.0 && sv >= nf / 8.0;
        table.row([
            n.to_string(),
            ell.to_string(),
            fmt_num(pm),
            fmt_num(sm),
            fmt_num(pv),
            fmt_num(sv),
            fmt_num(gap),
        ]);
    }
    report.add_table("median convergence times (parallel rounds)", table);

    report.check(
        seq_at_least_linearish,
        "sequential medians are Omega(n) for both protocols (the [14] bound)",
    );
    let growing = gaps.windows(2).all(|w| w[1] > w[0] * 0.9);
    let big = gaps.last().copied().unwrap_or(0.0) > 4.0;
    report.check(growing && big, format!("the sequential/parallel gap grows with n: {gaps:?}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_exponential_separation() {
        let report = run(&RunConfig::smoke(43), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
