//! **A1 — ablation: aggregate exact-chain vs agent-level simulator.**
//!
//! The aggregate simulator is the engine's key performance decision
//! (DESIGN.md §4.1): it must be *distributionally identical* to the literal
//! agent-level model. We compare (a) one-round transition means against the
//! exact Markov expectation for both simulators, (b) full convergence-time
//! distributions, and (c) throughput.

use std::time::Instant;

use bitdissem_core::dynamics::Minority;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_markov::AggregateChain;
use bitdissem_sim::agent::AgentSim;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::{run_to_consensus, Simulator};
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs ablation A1.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("a1");
    let mut report = ExperimentReport::new(
        "a1",
        "ablation: aggregate exact-chain simulator vs agent-level simulator",
        "design claim: the aggregate simulator has the same law as the \
         agent-level one, at a fraction of the cost",
    );

    let n: u64 = cfg.scale.pick(64, 256, 1024);
    let reps = cfg.scale.pick(400, 2000, 8000);
    let minority = Minority::new(3).expect("valid");
    let x0 = (3 * n) / 4;
    let start = Configuration::new(n, Opinion::One, x0).expect("consistent");

    // (a) One-round transition mean vs exact expectation.
    let chain = AggregateChain::build(&minority, n, Opinion::One).expect("valid");
    let exact_mean = chain.expected_next(x0);
    let agg_next = replicate_observed(reps, cfg.seed, cfg.threads, obs, |mut rng, _| {
        let mut sim = AggregateSim::new(&minority, start).expect("valid");
        sim.step_round(&mut rng);
        sim.configuration().ones() as f64
    });
    let agent_next = replicate_observed(reps, cfg.seed ^ 1, cfg.threads, obs, |mut rng, _| {
        let mut sim = AgentSim::new(&minority, start).expect("valid");
        sim.step_round(&mut rng);
        sim.configuration().ones() as f64
    });
    let agg_s = Summary::from_samples(&agg_next).expect("non-empty");
    let agent_s = Summary::from_samples(&agent_next).expect("non-empty");
    let se = agg_s.std_dev() / (reps as f64).sqrt();

    let mut table = Table::new(["quantity", "exact", "aggregate", "agent-level"]);
    table.row([
        "E[X'] after 1 round".to_string(),
        fmt_num(exact_mean),
        fmt_num(agg_s.mean()),
        fmt_num(agent_s.mean()),
    ]);
    table.row([
        "std of X'".to_string(),
        "-".to_string(),
        fmt_num(agg_s.std_dev()),
        fmt_num(agent_s.std_dev()),
    ]);
    report.check(
        (agg_s.mean() - exact_mean).abs() < 5.0 * se + 0.5,
        "aggregate one-round mean matches the exact expectation",
    );
    report.check(
        (agent_s.mean() - exact_mean).abs() < 5.0 * se + 0.5,
        "agent-level one-round mean matches the exact expectation",
    );
    report.check(
        (agg_s.std_dev() - agent_s.std_dev()).abs() < 0.2 * agent_s.std_dev() + 0.5,
        "one-round standard deviations agree between simulators",
    );

    // (b) Convergence-time distributions (favorable start so runs are
    // short enough for the O(n*l) agent simulator).
    let conv_reps = cfg.scale.pick(60, 200, 500);
    let fav = Configuration::new(n, Opinion::One, n - 1).expect("consistent");
    let budget = 40 * n;
    let agg_tau = replicate_observed(conv_reps, cfg.seed ^ 2, cfg.threads, obs, |mut rng, _| {
        let mut sim = AggregateSim::new(&minority, fav).expect("valid");
        run_to_consensus(&mut sim, &mut rng, budget).rounds_censored() as f64
    });
    let agent_tau = replicate_observed(conv_reps, cfg.seed ^ 3, cfg.threads, obs, |mut rng, _| {
        let mut sim = AgentSim::new(&minority, fav).expect("valid");
        run_to_consensus(&mut sim, &mut rng, budget).rounds_censored() as f64
    });
    let at = Summary::from_samples(&agg_tau).expect("non-empty");
    let gt = Summary::from_samples(&agent_tau).expect("non-empty");
    table.row([
        "median tau (from n-1)".to_string(),
        "-".to_string(),
        fmt_num(at.median()),
        fmt_num(gt.median()),
    ]);
    let pooled_se = (at.variance() / conv_reps as f64 + gt.variance() / conv_reps as f64).sqrt();
    report.check(
        (at.mean() - gt.mean()).abs() < 5.0 * pooled_se + 1.0,
        format!(
            "convergence-time means agree: {:.2} vs {:.2} (5-sigma window)",
            at.mean(),
            gt.mean()
        ),
    );

    // (c) Throughput.
    let steps = cfg.scale.pick(2_000u64, 10_000, 50_000);
    let speed = |agent: bool| -> f64 {
        let mut rng = bitdissem_sim::rng::rng_from(cfg.seed ^ 4);
        let begin = Instant::now();
        if agent {
            let mut sim = AgentSim::new(&minority, start).expect("valid");
            for _ in 0..steps.min(2_000) {
                sim.step_round(&mut rng);
            }
            steps.min(2_000) as f64 / begin.elapsed().as_secs_f64()
        } else {
            let mut sim = AggregateSim::new(&minority, start).expect("valid");
            for _ in 0..steps {
                sim.step_round(&mut rng);
            }
            steps as f64 / begin.elapsed().as_secs_f64()
        }
    };
    let agg_rps = speed(false);
    let agent_rps = speed(true);
    table.row(["rounds/second".to_string(), "-".to_string(), fmt_num(agg_rps), fmt_num(agent_rps)]);
    report.add_table(format!("minority(3), n = {n}"), table);
    report.finding(format!(
        "aggregate speedup ~{:.0}x at n = {n} (grows linearly with n)",
        agg_rps / agent_rps.max(1e-9)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_simulators_agree() {
        let report = run(&RunConfig::smoke(53), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
