//! **E13 — does one bit of memory escape the lower bound?**
//!
//! The paper's discussion asks whether Theorem 1 extends "to protocols
//! using a constant amount of memory". This experiment probes the question
//! empirically with the undecided-state dynamics under passive
//! communication (one private "am I sure?" bit on top of the displayed
//! opinion): from the adversarial all-decided-wrong configuration it
//! behaves *majority-like* — the extra bit makes the dynamics drift toward
//! the wrong display consensus, and it fails to converge within a `50n`
//! budget, consistent with (indeed stronger than) the conjectured
//! constant-memory lower bound. Memory-less baselines run in the same
//! stateful engine as a control.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::stateful::{usd_states, Memoryless, StatefulProtocol, UndecidedState};
use bitdissem_core::Opinion;
use bitdissem_sim::runner::replicate_observed;
use bitdissem_sim::stateful::StatefulSim;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::pow2_sweep;
use bitdissem_obs::Obs;

fn measure_usd(
    obs: &Obs,
    ell: usize,
    n: u64,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> (f64, f64) {
    let times = replicate_observed(reps, seed, threads, obs, |mut rng, _| {
        // Adversarial memory: every non-source agent is *decided* on the
        // wrong opinion (z = 1, all display 0).
        let usd = UndecidedState::new(ell).expect("valid");
        let mut counts = vec![0u64; 4];
        counts[usd_states::DECIDED_ZERO] = n - 1;
        let mut sim = StatefulSim::with_state_counts(usd, n, Opinion::One, counts);
        sim.run_to_display_consensus(&mut rng, budget).map_or(budget as f64, |t| t as f64)
    });
    let s = Summary::from_samples(&times).expect("non-empty");
    let frac = times.iter().filter(|&&t| t < budget as f64).count() as f64 / reps as f64;
    (s.median(), frac)
}

fn measure_memoryless<P>(
    obs: &Obs,
    protocol: P,
    n: u64,
    reps: usize,
    budget: u64,
    seed: u64,
    threads: Option<usize>,
) -> (f64, f64)
where
    P: bitdissem_core::Protocol + Copy + Sync,
{
    let times = replicate_observed(reps, seed, threads, obs, |mut rng, _| {
        let mut sim = StatefulSim::new(Memoryless::new(protocol), n, Opinion::One, 1);
        sim.run_to_display_consensus(&mut rng, budget).map_or(budget as f64, |t| t as f64)
    });
    let s = Summary::from_samples(&times).expect("non-empty");
    let frac = times.iter().filter(|&&t| t < budget as f64).count() as f64 / reps as f64;
    (s.median(), frac)
}

/// Runs experiment E13.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e13");
    let mut report = ExperimentReport::new(
        "e13",
        "constant memory under passive communication (future-work probe)",
        "Discussion: does the Omega(n^{1-eps}) bound extend to constant \
         memory? The undecided-state dynamics (1 extra private bit) turns \
         majority-like and stays slow from the adversarial start",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(64, 2),
        1 => pow2_sweep(256, 3),
        _ => pow2_sweep(512, 4),
    };
    let reps = cfg.scale.pick(8, 16, 32);

    let mut table = Table::new(["protocol", "n", "median T", "frac converged"]);
    let mut usd_converged_at_largest = 1.0f64;
    let mut voter_always_converges = true;
    for &n in &ns {
        let budget = 50 * n;
        for ell in [1usize, 3] {
            let (median, frac) =
                measure_usd(obs, ell, n, reps, budget, cfg.seed ^ n ^ (ell as u64), cfg.threads);
            if n == *ns.last().expect("non-empty") {
                usd_converged_at_largest = usd_converged_at_largest.min(frac);
            }
            table.row([
                UndecidedState::new(ell).expect("valid").name(),
                n.to_string(),
                fmt_num(median),
                fmt_num(frac),
            ]);
        }
        let (vm, vf) = measure_memoryless(
            obs,
            Voter::new(1).expect("valid"),
            n,
            reps,
            budget,
            cfg.seed ^ n ^ 0x11,
            cfg.threads,
        );
        voter_always_converges &= vf > 0.9;
        table.row(["memoryless(voter(l=1))".to_string(), n.to_string(), fmt_num(vm), fmt_num(vf)]);
        let (mm, mf) = measure_memoryless(
            obs,
            Minority::new(3).expect("valid"),
            n,
            reps,
            budget,
            cfg.seed ^ n ^ 0x12,
            cfg.threads,
        );
        table.row([
            "memoryless(minority(l=3))".to_string(),
            n.to_string(),
            fmt_num(mm),
            fmt_num(mf),
        ]);
    }
    report.add_table(
        "convergence from the adversarial start (all non-source decided wrong), budget 50n",
        table,
    );

    report.check(
        usd_converged_at_largest <= 0.25,
        format!(
            "undecided-state stays slow at the largest n (converged fraction \
             {usd_converged_at_largest:.2} within 50n rounds) — one private bit does \
             not escape the bound here"
        ),
    );
    report.check(
        voter_always_converges,
        "the memory-less Voter baseline converges in the same stateful engine \
         (engine control)",
    );
    report.finding(
        "the undecided bit makes the dynamics majority-like: the drift points \
         toward the wrong display consensus from the adversarial start"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_memory_does_not_help() {
        let report = run(&RunConfig::smoke(67), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
