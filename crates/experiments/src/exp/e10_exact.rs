//! **E10 — engine validation against exact Markov chains.**
//!
//! Because the aggregate state is a Markov chain on `{0, …, n}`, small-`n`
//! instances can be solved exactly (dense LU for the parallel chain,
//! tridiagonal for the sequential one). This experiment compares exact
//! expected and median convergence times against simulated means/medians —
//! any discrepancy beyond sampling error would mean the engine does not
//! implement the model of Section 1.1. Cases whose *exact* expected time
//! exceeds a budget cap (Minority at larger `n` is exponentially slow) are
//! skipped — the exact solver itself reports them as out of reach.

use bitdissem_core::dynamics::{Majority, Minority, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol};
use bitdissem_markov::absorbing::{expected_hitting_times, median_from_survival, survival_curve};
use bitdissem_markov::{AggregateChain, SequentialChain};
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::{
    measure_convergence_engine_observed, measure_convergence_sequential_observed,
};
use bitdissem_obs::Obs;

/// One validation case: a protocol plus a starting state chosen so that the
/// exact expected time is computable and moderate.
struct Case {
    protocol: Box<dyn Protocol + Send + Sync>,
    /// Start as a fraction of `n` (ones), clamped to a consistent state.
    start_fraction: f64,
}

/// Runs experiment E10.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e10");
    let mut report = ExperimentReport::new(
        "e10",
        "simulated vs exact convergence times (small n)",
        "the aggregate process is a Markov chain on (z, X_t); simulation must \
         match exact hitting times within sampling error",
    );

    let ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![16, 24],
        1 => vec![16, 32, 64],
        _ => vec![16, 32, 64, 128],
    };
    let reps = cfg.scale.pick(300, 2000, 10_000);
    let exact_cap = 5.0e3;

    let cases = vec![
        Case { protocol: Box::new(Voter::new(1).expect("valid")), start_fraction: 1.0 / 16.0 },
        Case { protocol: Box::new(Majority::new(3).expect("valid")), start_fraction: 0.75 },
        Case { protocol: Box::new(Minority::new(3).expect("valid")), start_fraction: 0.9 },
    ];

    let mut table = Table::new([
        "protocol",
        "n",
        "x0",
        "exact E[T]",
        "sim mean",
        "rel err",
        "exact median",
        "sim median",
    ]);
    let mut worst_rel_err: f64 = 0.0;
    let mut worst_median_err: f64 = 0.0;
    let mut compared = 0usize;
    for case in &cases {
        for &n in &ns {
            let x0 = ((case.start_fraction * n as f64).round() as u64).clamp(1, n - 1);
            let start = Configuration::new(n, Opinion::One, x0).expect("consistent");
            let chain = AggregateChain::build(&case.protocol, n, Opinion::One).expect("valid");
            let exact = expected_hitting_times(&chain).expect("compliant protocols absorb");
            let exact_mean = exact.from_state(x0);
            if exact_mean > exact_cap {
                table.row([
                    case.protocol.name(),
                    n.to_string(),
                    x0.to_string(),
                    fmt_num(exact_mean),
                    "skipped".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                continue;
            }
            let curve = survival_curve(&chain, x0, (exact_mean * 30.0) as usize + 200);
            let exact_median = median_from_survival(&curve).map_or(f64::NAN, |m| m as f64);

            let budget = (exact_mean * 500.0) as u64 + 1000;
            let batch = measure_convergence_engine_observed(
                obs,
                cfg.engine,
                &case.protocol,
                start,
                reps,
                budget,
                cfg.seed ^ n ^ ((case.protocol.sample_size() as u64) << 40),
                cfg.threads,
            );
            let s = batch.censored_summary().expect("non-empty");
            // The mean is tail-sensitive (Majority has an exponentially rare
            // but exponentially slow dip below n/2 that dominates E[T]);
            // compare means only where the tail is light (Voter), medians
            // everywhere.
            if case.protocol.name().starts_with("voter") {
                let rel = (s.mean() - exact_mean).abs() / exact_mean.max(1e-9);
                worst_rel_err = worst_rel_err.max(rel);
            }
            if exact_median.is_finite() {
                let med_err = (s.median() - exact_median).abs() / exact_median.max(1.0);
                worst_median_err = worst_median_err
                    .max(if (s.median() - exact_median).abs() <= 1.0 { 0.0 } else { med_err });
            }
            compared += 1;
            let rel = (s.mean() - exact_mean).abs() / exact_mean.max(1e-9);
            table.row([
                case.protocol.name(),
                n.to_string(),
                x0.to_string(),
                fmt_num(exact_mean),
                fmt_num(s.mean()),
                fmt_num(rel),
                fmt_num(exact_median),
                fmt_num(s.median()),
            ]);
        }
    }
    report.add_table("parallel setting: exact dense solve vs simulation", table);
    report.check(compared >= 4, format!("{compared} cases compared against exact values"));
    report.check(
        worst_rel_err < 0.15,
        format!("worst Voter mean relative error {worst_rel_err:.3} < 0.15"),
    );
    report.check(
        worst_median_err < 0.2,
        format!("worst median relative error {worst_median_err:.3} < 0.2 (all protocols)"),
    );

    // Sequential setting: exact tridiagonal solve vs simulation.
    let mut seq_table = Table::new(["protocol", "n", "exact E[T] (rounds)", "sim mean", "rel err"]);
    let voter = Voter::new(1).expect("valid");
    let mut worst_seq: f64 = 0.0;
    for &n in &ns {
        let x0 = n / 2;
        let sc = SequentialChain::build(&voter, n, Opinion::One).expect("valid");
        let exact = sc.expected_rounds_from(x0).expect("voter converges");
        let start = Configuration::new(n, Opinion::One, x0).expect("consistent");
        let seq_reps = reps / 4 + 10;
        let batch = measure_convergence_sequential_observed(
            obs,
            &voter,
            start,
            seq_reps,
            (exact * 500.0) as u64 + 1000,
            cfg.seed ^ 0x5EC ^ n,
            cfg.threads,
        );
        let s = batch.censored_summary().expect("non-empty");
        // The simulator measures in whole rounds: ±1 round discretization.
        let rel = (s.mean() - exact).abs() / exact.max(1.0);
        worst_seq = worst_seq.max(rel);
        seq_table.row([
            "voter(l=1) seq".to_string(),
            n.to_string(),
            fmt_num(exact),
            fmt_num(s.mean()),
            fmt_num(rel),
        ]);
    }
    report.add_table("sequential setting: exact tridiagonal solve vs simulation", seq_table);
    report.check(
        worst_seq < 0.2,
        format!("worst sequential mean relative error {worst_seq:.3} < 0.2"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_matches_exact_chains() {
        let report = run(&RunConfig::smoke(41), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
