//! **E15 — the sequential `Ω(n)` lower bound, exactly, for arbitrary
//! protocols.**
//!
//! Reference \[14\] proves that in the sequential setting *no* memory-less
//! protocol converges in fewer than `Ω(n)` parallel rounds in expectation,
//! regardless of the sample size — because the process is a birth–death
//! chain. Our exact tridiagonal solver makes this checkable without any
//! sampling: for named dynamics *and* randomly generated protocol tables,
//! the worst-start expected convergence time (in parallel rounds) never
//! drops below a constant multiple of `n`, and the minimum over protocols
//! scales linearly.

use bitdissem_core::dynamics::{Majority, Minority, ThresholdRule, Voter};
use bitdissem_core::{GTable, Opinion, Protocol};
use bitdissem_markov::SequentialChain;
use bitdissem_sim::rng::rng_from;
use bitdissem_stats::regression::fit_power_law;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;
use rand::Rng;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Worst-start expected convergence time in parallel rounds, or `None` if
/// the consensus is unreachable (then the time is `+∞`, which only
/// strengthens the bound).
fn worst_expected_rounds<P: Protocol + ?Sized>(protocol: &P, n: u64) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for correct in Opinion::ALL {
        let chain = SequentialChain::build(protocol, n, correct).ok()?;
        match chain.expected_activations() {
            Some(t) => {
                let w = t.iter().cloned().fold(0.0, f64::max) / n as f64;
                worst = worst.max(w);
            }
            None => return None, // unreachable consensus: infinite time
        }
    }
    Some(worst)
}

/// Runs experiment E15.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e15");
    let mut report = ExperimentReport::new(
        "e15",
        "exact sequential lower bound across all protocols",
        "[14]: in the sequential setting every protocol needs Omega(n) \
         parallel rounds in expectation, for any sample size — verified here \
         by exact birth-death solves, with no sampling error",
    );

    let ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![32, 64, 128],
        1 => vec![32, 64, 128, 256],
        _ => vec![64, 128, 256, 512, 1024],
    };
    let random_tables = cfg.scale.pick(20usize, 60, 150);

    let named: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(ThresholdRule::new(4, 1).expect("valid")),
        // A large sample does not help in the sequential setting — the
        // point of the [14]/[15] contrast.
        Box::new(Minority::new(64).expect("valid")),
    ];

    let mut table = Table::new(["n", "protocol", "worst E[T]/n (exact)"]);
    let mut min_ratio_per_n: Vec<(u64, f64)> = Vec::new();
    for &n in &ns {
        let mut min_ratio = f64::INFINITY;
        for protocol in &named {
            let rounds = worst_expected_rounds(protocol, n);
            let ratio = rounds.map_or(f64::INFINITY, |r| r / n as f64);
            min_ratio = min_ratio.min(ratio);
            table.row([
                n.to_string(),
                protocol.name(),
                if ratio.is_finite() { fmt_num(ratio) } else { "inf".to_string() },
            ]);
        }
        // Random protocol tables with Prop-3 endpoints.
        let mut rng = rng_from(cfg.seed ^ n);
        for trial in 0..random_tables {
            let ell = rng.random_range(1..=5usize);
            let mut g0: Vec<f64> = (0..=ell).map(|_| rng.random()).collect();
            let mut g1: Vec<f64> = (0..=ell).map(|_| rng.random()).collect();
            g0[0] = 0.0;
            g1[ell] = 1.0;
            let t = GTable::new(g0, g1).expect("valid");
            let rounds = worst_expected_rounds(&t, n);
            let ratio = rounds.map_or(f64::INFINITY, |r| r / n as f64);
            min_ratio = min_ratio.min(ratio);
            if trial < 2 {
                table.row([
                    n.to_string(),
                    format!("random-{trial}(l={ell})"),
                    if ratio.is_finite() { fmt_num(ratio) } else { "inf".to_string() },
                ]);
            }
        }
        min_ratio_per_n.push((n, min_ratio));
    }
    report.add_table(
        format!(
            "exact worst-start expected sequential time / n \
             (named + {random_tables} random tables per n; first 2 shown)"
        ),
        table,
    );

    let all_linear = min_ratio_per_n.iter().all(|&(_, r)| r >= 0.2);
    report.check(
        all_linear,
        format!(
            "min over protocols of worst E[T]/n stays >= 0.2 at every n: {:?}",
            min_ratio_per_n.iter().map(|&(n, r)| format!("n={n}: {r:.2}")).collect::<Vec<_>>()
        ),
    );
    // The minimum itself scales (at least) linearly.
    let xs: Vec<f64> = min_ratio_per_n.iter().map(|&(n, _)| n as f64).collect();
    let ys: Vec<f64> = min_ratio_per_n.iter().map(|&(n, r)| (r * n as f64).max(1.0)).collect();
    if let Some((b, _c, r2)) = fit_power_law(&xs, &ys) {
        report.check(
            b >= 0.85,
            format!("min worst E[T] scales like n^{b:.2} (R2 = {r2:.3}) — the Omega(n) bound"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_sequential_bound_is_exact() {
        let report = run(&RunConfig::smoke(73), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
