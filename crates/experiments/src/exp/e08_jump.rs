//! **E8 — Proposition 4: the one-step jump bound.**
//!
//! From any state with `X_t ≤ c·n`, the next state satisfies
//! `X_{t+1} ≤ y(c,ℓ)·n` with `y = 1 − (1−c)^{ℓ+1}/2`, except with
//! probability `exp(−2√n)`. We fire many single rounds from states at each
//! `c` and across full trajectories, for several protocols and sample
//! sizes, and count violations (expected: zero at these scales, since the
//! failure probability is ≪ 1e-8).

use bitdissem_analysis::jump::{check_jump, y_constant};
use bitdissem_core::dynamics::{Minority, TwoChoices, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::Simulator;
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E8.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e8");
    let mut report = ExperimentReport::new(
        "e8",
        "one-step jump bound (Proposition 4)",
        "Prop 4: from X_t <= c*n, X_{t+1} <= (1 - (1-c)^{l+1}/2)*n except \
         with probability exp(-2 sqrt(n))",
    );

    let n: u64 = cfg.scale.pick(512, 2048, 8192);
    let reps = cfg.scale.pick(200, 1000, 5000);
    let cs = [0.2, 0.4, 0.6, 0.8];

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Minority::new(7).expect("valid")),
        Box::new(TwoChoices::new()),
    ];

    let mut table =
        Table::new(["protocol", "c", "y(c,l)", "max X'/n observed", "violations", "trials"]);
    let mut total_violations = 0u64;
    for protocol in &protocols {
        let ell = protocol.sample_size();
        for &c in &cs {
            let x0 = ((c * n as f64).floor() as u64).clamp(1, n - 1);
            let start = Configuration::new(n, Opinion::One, x0).expect("consistent");
            let nexts = replicate_observed(
                reps,
                cfg.seed ^ n ^ ((c * 1000.0) as u64) ^ (ell as u64) << 32,
                cfg.threads,
                obs,
                |mut rng, _| {
                    let mut sim = AggregateSim::new(protocol, start).expect("valid");
                    sim.step_round(&mut rng);
                    sim.configuration().ones()
                },
            );
            let max_next = nexts.iter().copied().max().unwrap_or(0);
            let violations =
                nexts.iter().filter(|&&x1| check_jump(n, ell, c, x0, x1) == Some(false)).count()
                    as u64;
            total_violations += violations;
            table.row([
                protocol.name(),
                fmt_num(c),
                fmt_num(y_constant(c, ell)),
                fmt_num(max_next as f64 / n as f64),
                violations.to_string(),
                reps.to_string(),
            ]);
        }
    }
    report.add_table(format!("single-round jumps at n = {n}"), table);
    report.check(
        total_violations == 0,
        format!(
            "zero violations across {} single-round trials (failure bound exp(-2 sqrt(n)) = {:.1e})",
            reps * protocols.len() * cs.len(),
            (-2.0 * (n as f64).sqrt()).exp()
        ),
    );

    // Trajectory-wide check for one protocol: every step of long runs.
    let minority = Minority::new(3).expect("valid");
    let c = 0.5;
    let steps = cfg.scale.pick(2_000u64, 20_000, 100_000);
    let traj_violations: u64 =
        replicate_observed(4, cfg.seed ^ 0xBEEF, cfg.threads, obs, |mut rng, _| {
            let start = Configuration::new(n, Opinion::One, n / 4).expect("consistent");
            let mut sim = AggregateSim::new(&minority, start).expect("valid");
            let mut v = 0u64;
            let mut prev = sim.configuration().ones();
            for _ in 0..steps {
                sim.step_round(&mut rng);
                let cur = sim.configuration().ones();
                if check_jump(n, 3, c, prev, cur) == Some(false) {
                    v += 1;
                }
                prev = cur;
            }
            v
        })
        .into_iter()
        .sum();
    report.check(
        traj_violations == 0,
        format!("zero violations along 4 trajectories of {steps} rounds (c = {c})"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_no_violations() {
        let report = run(&RunConfig::smoke(31), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
