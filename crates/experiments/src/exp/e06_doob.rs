//! **E6 — Figure 1: the Doob-decomposition mechanics of Theorem 6.**
//!
//! Along simulated trajectories of a Case-1 protocol started at the witness
//! configuration, we replay the decomposition `Y_t = M_t + A_t` with the
//! *exact* conditional expectation as drift and verify, for `T = n^{1−ε}`
//! rounds:
//!
//! 1. the Doob identity holds pathwise;
//! 2. the predictable part is non-increasing while the chain is in the
//!    supermartingale interval (assumption (i) ⇒ Claim 7);
//! 3. `M_t ≥ Y_t` throughout (Claim 9);
//! 4. the chain does not cross `a₃·n` before `T` (the theorem's
//!    conclusion).

use bitdissem_analysis::doob::DoobTracker;
use bitdissem_analysis::{LowerBoundWitness, WitnessCase};
use bitdissem_core::dynamics::Minority;
use bitdissem_markov::AggregateChain;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E6.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e6");
    let mut report = ExperimentReport::new(
        "e6",
        "Doob decomposition along adversarial trajectories (Figure 1)",
        "Theorem 6: with the drift of assumption (i), Y_t = X_t - t never \
         overtakes its martingale part M_t, M_t stays confined, and the \
         chain cannot cross a3*n within T = n^{1-eps} rounds w.h.p.",
    );

    let n: u64 = cfg.scale.pick(512, 4096, 16384);
    let reps = cfg.scale.pick(5, 20, 50);
    let epsilon = 0.3;
    let t_max = (n as f64).powf(1.0 - epsilon).ceil() as u64;

    let minority = Minority::new(3).expect("valid");
    let witness = LowerBoundWitness::construct(&minority, n).expect("valid");
    assert_eq!(witness.case(), WitnessCase::NegativeDrift, "Minority(3) is Case 1");
    let chain = AggregateChain::build(&minority, n, witness.start().correct()).expect("valid");
    let (a1, _a2, a3) = witness.interval_constants();

    let mut identity_violations = 0u64;
    let mut reps_with_domination = 0u64;
    let mut drift_sign_violations = 0u64;
    let mut crossings_before_t = 0u64;
    let mut min_m_minus_y = f64::INFINITY;

    let mut table = Table::new(["rep", "rounds", "final X/n", "min(M-Y)", "crossed a3n?"]);
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(cfg.seed, rep as u64));
        let mut sim = AggregateSim::new(&minority, witness.start()).expect("valid");
        let mut tracker = DoobTracker::new(witness.start().ones(), |x| chain.expected_next(x));
        let mut rep_min_gap = f64::INFINITY;
        let mut crossed = false;
        for _ in 0..t_max {
            let x = sim.configuration().ones();
            // Assumption (i) premise: inside {a1 n, ..., a3 n}, the drift is
            // downward (Case 1), so the predictable increment must be <= 0.
            let inside = (x as f64) >= a1 * n as f64 && (x as f64) <= a3 * n as f64;
            if inside && tracker.next_predictable_increment() > 1e-9 {
                drift_sign_violations += 1;
            }
            sim.step_round(&mut rng);
            let s = tracker.push(sim.configuration().ones());
            if (s.y - (s.m + s.a)).abs() > 1e-6 {
                identity_violations += 1;
            }
            let gap = s.m - s.y;
            rep_min_gap = rep_min_gap.min(gap);
            if witness.crossed(sim.configuration().ones()) {
                crossed = true;
                break;
            }
        }
        if crossed {
            crossings_before_t += 1;
        }
        if rep_min_gap >= -1e-6 {
            reps_with_domination += 1;
        }
        min_m_minus_y = min_m_minus_y.min(rep_min_gap);
        table.row([
            rep.to_string(),
            t_max.to_string(),
            fmt_num(sim.configuration().fraction_ones()),
            fmt_num(rep_min_gap),
            if crossed { "yes".to_string() } else { "no".to_string() },
        ]);
    }
    report.add_table(
        format!("Minority(3), n = {n}, T = n^{{0.7}} = {t_max} rounds, Case 1 witness"),
        table,
    );

    report.check(identity_violations == 0, "Doob identity Y = M + A holds pathwise");
    report.check(
        drift_sign_violations == 0,
        "predictable increments are non-positive inside the interval (assumption (i))",
    );
    // Claim 9 (M >= Y) is a w.h.p. statement whose confinement margins are
    // asymptotic (alpha*n vs sqrt(T*n) noise): at laptop-scale n an
    // occasional dip is expected, so the check is on the majority of reps.
    let dom_frac = reps_with_domination as f64 / reps as f64;
    report.check(
        dom_frac >= 0.6,
        format!(
            "M_t >= Y_t held throughout in {reps_with_domination}/{reps} reps \
             (Claim 9, asymptotic); global min gap = {min_m_minus_y:.2}"
        ),
    );
    report.check(
        crossings_before_t == 0,
        format!(
            "no replication crossed a3*n within n^{{1-eps}} rounds ({crossings_before_t}/{reps})"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_validates_theorem6_mechanics() {
        let report = run(&RunConfig::smoke(23), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
