//! **E18 — how much synchronicity does the fast regime need?**
//!
//! The paper's headline contrast — and the title of \[15\] ("the power of
//! synchronicity") — is that the fully parallel Minority dynamics with a
//! large sample is exponentially faster than any sequential protocol. This
//! experiment interpolates between the two settings with the
//! partial-synchrony scheduler (`m` simultaneous activations per step,
//! times normalized to parallel rounds) and maps where the fast regime
//! dies: the poly-log convergence of Minority survives only while the
//! activated batch is a large fraction of the population.

use bitdissem_core::dynamics::Minority;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::partial::PartialSim;
use bitdissem_sim::run::{run_to_consensus, Outcome};
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E18.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e18");
    let mut report = ExperimentReport::new(
        "e18",
        "partial synchrony: interpolating the parallel and sequential settings",
        "[15]'s 'power of synchronicity': Minority with a large sample is \
         poly-log in the parallel setting but Omega(n) sequentially; the \
         batch-size sweep shows where the fast regime collapses",
    );

    let n: u64 = cfg.scale.pick(128, 1024, 4096);
    let reps = cfg.scale.pick(6, 12, 24);
    let ell = Minority::fast_sample_size(n);
    let minority = Minority::new(ell).expect("valid");
    let start = Configuration::all_wrong(n, Opinion::One);
    let polylog = (n as f64).ln().powi(2);
    let budget = cfg.scale.pick(8, 16, 16) * n; // parallel rounds

    // Batch sizes: powers of 4 plus dense fractions near full synchrony
    // (the collapse sits between 1/4 and 1 of the population).
    let mut batches: Vec<u64> = Vec::new();
    let mut m = 1u64;
    while m < n - 1 {
        batches.push(m);
        m *= 4;
    }
    for frac in [0.5, 0.75, 0.9] {
        let b = ((n - 1) as f64 * frac) as u64;
        if !batches.contains(&b) && b < n - 1 {
            batches.push(b);
        }
    }
    batches.push(n - 1);
    batches.sort_unstable();
    batches.dedup();

    let mut table =
        Table::new(["m (batch)", "m/(n-1)", "median T (rounds)", "frac converged", "regime"]);
    let mut fast_at_full = false;
    let mut slow_at_unit = false;
    let mut last_fast_fraction: Option<f64> = None;
    for &batch in &batches {
        let times = replicate_observed(
            reps,
            cfg.seed ^ batch.rotate_left(23),
            cfg.threads,
            obs,
            |mut rng, _| {
                let mut sim = PartialSim::new(&minority, start, batch).expect("valid");
                match run_to_consensus(&mut sim, &mut rng, budget) {
                    Outcome::Converged { rounds } => rounds as f64,
                    Outcome::TimedOut { rounds } => rounds as f64,
                }
            },
        );
        let s = Summary::from_samples(&times).expect("non-empty");
        let frac = times.iter().filter(|&&t| t < budget as f64).count() as f64 / reps as f64;
        let fast = s.median() <= 30.0 * polylog && frac > 0.5;
        if batch == n - 1 {
            fast_at_full = fast;
        }
        if batch == 1 {
            slow_at_unit = s.median() >= n as f64 / 8.0;
        }
        if fast {
            let f = batch as f64 / (n - 1) as f64;
            last_fast_fraction = Some(last_fast_fraction.map_or(f, |g: f64| g.min(f)));
        }
        table.row([
            batch.to_string(),
            fmt_num(batch as f64 / (n - 1) as f64),
            fmt_num(s.median()),
            fmt_num(frac),
            if fast { "fast".to_string() } else { "slow".to_string() },
        ]);
    }
    report.add_table(
        format!("Minority(l={ell}) at n = {n}, batch-size sweep (budget {budget} rounds)"),
        table,
    );

    report.check(fast_at_full, "full synchrony (m = n-1) is in the poly-log regime");
    report
        .check(slow_at_unit, "unit batches (the sequential setting) are Omega(n), as [14] proves");
    match last_fast_fraction {
        Some(f) => report.finding(format!(
            "smallest observed fast batch fraction: m/(n-1) ~ {f:.3} — synchronicity \
             is load-bearing for the [15] speedup"
        )),
        None => report.check(false, "no fast regime found at any batch size"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_synchronicity_matters() {
        let report = run(&RunConfig::smoke(89), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
