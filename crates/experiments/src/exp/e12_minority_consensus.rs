//! **E12 — the Minority dynamics without a source: consensus and chaos.**
//!
//! The paper motivates Minority beyond bit dissemination: it also solves
//! plain consensus (no source) and is "significantly faster than the Voter
//! dynamics, provided that ℓ is large enough", while its "chaotic
//! behaviour is yet to be fully understood". This experiment measures
//! source-less consensus times for Minority (large ℓ), 3-Majority and
//! Voter, and quantifies the signature period-2 oscillation of Minority
//! near the balanced configuration.

use bitdissem_core::dynamics::{Majority, Minority, Voter};
use bitdissem_core::Protocol;
use bitdissem_sim::consensus::NoSourceSim;
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E12.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e12");
    let mut report = ExperimentReport::new(
        "e12",
        "source-less consensus and the Minority oscillation",
        "Sec. 1: with large l, Minority solves plain consensus much faster \
         than Voter; near balance it oscillates with period 2 (the chaotic \
         signature)",
    );

    let n: u64 = cfg.scale.pick(256, 4096, 16384);
    let reps = cfg.scale.pick(10, 25, 50);
    let ell = Minority::fast_sample_size(n);

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Minority::new(ell).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(Voter::new(1).expect("valid")),
    ];

    let starts = [("balanced", n / 2), ("2:1 split", n / 3)];
    let mut table = Table::new(["protocol", "start", "median T", "frac converged"]);
    let mut minority_medians = Vec::new();
    let mut voter_medians = Vec::new();
    for protocol in &protocols {
        for &(label, ones) in &starts {
            let budget = 40 * n;
            let times = replicate_observed(
                reps,
                cfg.seed ^ ones ^ ((protocol.sample_size() as u64) << 13),
                cfg.threads,
                obs,
                |mut rng, _| {
                    let mut sim = NoSourceSim::new(protocol, n, ones).expect("valid");
                    sim.run_to_any_consensus(&mut rng, budget)
                        .map_or(budget as f64, |(t, _)| t as f64)
                },
            );
            let s = Summary::from_samples(&times).expect("non-empty");
            let frac = times.iter().filter(|&&t| t < budget as f64).count() as f64 / reps as f64;
            if protocol.name().starts_with("minority") {
                minority_medians.push(s.median());
            }
            if protocol.name().starts_with("voter") {
                voter_medians.push(s.median());
            }
            table.row([protocol.name(), label.to_string(), fmt_num(s.median()), fmt_num(frac)]);
        }
    }
    report.add_table(format!("source-less consensus at n = {n} (minority l = {ell})"), table);

    let min_worst = minority_medians.iter().cloned().fold(0.0, f64::max);
    let vot_best = voter_medians.iter().cloned().fold(f64::INFINITY, f64::min);
    report.check(
        min_worst * 4.0 < vot_best,
        format!(
            "Minority (l={ell}) consensus is much faster than Voter: {min_worst:.1} vs {vot_best:.1}"
        ),
    );

    // Oscillation measurement near balance.
    let osc = replicate_observed(reps, cfg.seed ^ 0x05C1, cfg.threads, obs, |mut rng, _| {
        let mut sim =
            NoSourceSim::new(&Minority::new(ell).expect("valid"), n, n / 2 + 2).expect("valid");
        let (steps, flips) = sim.measure_oscillation(&mut rng, 60);
        if steps == 0 {
            1.0 // converged immediately: treat as maximally decisive
        } else {
            flips as f64 / steps as f64
        }
    });
    let osc_summary = Summary::from_samples(&osc).expect("non-empty");
    let mut osc_table = Table::new(["quantity", "value"]);
    osc_table.row(["mean majority-side flip rate", &fmt_num(osc_summary.mean())]);
    osc_table.row(["median flip rate", &fmt_num(osc_summary.median())]);
    report.add_table("period-2 oscillation of Minority near balance", osc_table);
    report.check(
        osc_summary.median() >= 0.5,
        format!(
            "the majority side flips in at least half of the rounds near balance \
             (median flip rate {:.2})",
            osc_summary.median()
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_speedup_and_oscillation() {
        let report = run(&RunConfig::smoke(47), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
