//! **E16 — self-stabilization: the witness start is near-worst among all
//! initial configurations.**
//!
//! The problem is *self-stabilizing*: a protocol must converge from every
//! initial configuration, so its convergence time is the worst case over
//! starts. This experiment computes, exactly, the expected convergence time
//! from **every** state for both correct opinions (small `n`), and checks
//! that the Theorem-12 witness configuration captures that worst case up to
//! a modest constant — i.e. the analytical adversary is essentially as bad
//! as the exhaustive one.

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::dynamics::{Majority, Minority, TwoChoices, Voter};
use bitdissem_core::{Opinion, Protocol};
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::AggregateChain;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Exact worst-case expected convergence time over *all* starts and both
/// correct opinions, plus the time from the witness start.
fn exact_worst_and_witness<P: Protocol + ?Sized>(
    protocol: &P,
    n: u64,
) -> Option<(f64, f64, u64, Opinion)> {
    let witness = LowerBoundWitness::construct(protocol, n).ok()?;
    let wz = witness.start().correct();
    let mut worst = 0.0f64;
    let mut worst_state = 0;
    let mut worst_z = Opinion::Zero;
    let mut witness_time = 0.0;
    for z in Opinion::ALL {
        let chain = AggregateChain::build(protocol, n, z).ok()?;
        let times = expected_hitting_times(&chain)?;
        let (state, w) = times.worst();
        if w > worst {
            worst = w;
            worst_state = state;
            worst_z = z;
        }
        if z == wz {
            witness_time = times.from_state(witness.start().ones());
        }
    }
    let _ = worst_z;
    Some((worst, witness_time, worst_state, wz))
}

/// Runs experiment E16.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e16");
    let mut report = ExperimentReport::new(
        "e16",
        "self-stabilization: exhaustive worst-case start vs the analytic witness",
        "the problem quantifies over every initial configuration; the \
         Theorem-12 witness must be (near-)worst-case, which exact hitting \
         times over all starts can verify at small n",
    );

    let ns: Vec<u64> = match cfg.scale.pick(0, 1, 2) {
        0 => vec![16, 32],
        1 => vec![16, 32, 64],
        _ => vec![32, 64, 128],
    };

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Majority::new(3).expect("valid")),
        Box::new(TwoChoices::new()),
    ];

    let mut table = Table::new([
        "protocol",
        "n",
        "exact worst E[T]",
        "worst state",
        "witness E[T]",
        "witness/worst",
    ]);
    let mut all_captured = true;
    for protocol in &protocols {
        for &n in &ns {
            match exact_worst_and_witness(protocol, n) {
                Some((worst, wit, worst_state, _)) => {
                    let ratio = wit / worst.max(1e-300);
                    // The witness sits inside the slow region: for drift
                    // protocols (QSD-dominated) the ratio is ~1; for
                    // voter-like diffusion it is a constant fraction.
                    let captured = ratio >= 0.1;
                    all_captured &= captured;
                    table.row([
                        protocol.name(),
                        n.to_string(),
                        fmt_num(worst),
                        worst_state.to_string(),
                        fmt_num(wit),
                        fmt_num(ratio),
                    ]);
                }
                None => {
                    all_captured = false;
                    table.row([
                        protocol.name(),
                        n.to_string(),
                        "unsolvable".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
    }
    report.add_table("exact expected convergence over every start (dense LU)", table);
    report.check(
        all_captured,
        "the witness start captures >= 10% of the exhaustive worst case for \
         every protocol and n (ratio ~1 for drift cases)",
    );
    report.finding(
        "drift-case worst times grow super-polynomially (Minority(3): see the \
         exact E[T] column double exponents as n doubles) while voter-like \
         worst times grow like n log n — the two regimes of the paper"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_witness_is_near_worst() {
        let report = run(&RunConfig::smoke(79), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
