//! **E14 — passive communication with noisy observations.**
//!
//! The model idealizes passive communication: observations are perfect.
//! This experiment quantifies what happens when each observed opinion is
//! independently misread with probability `δ`: the induced effective rule
//! (computable exactly, [`with_observation_noise`]) violates Proposition 3
//! for every `δ > 0`, the reached consensus decays, and the population is
//! pinned near the uninformative `p = 1/2` — e.g. for the noisy Voter the
//! bias polynomial becomes `F(p) = δ(1 − 2p)` with its unique interior
//! root at `1/2`.

use bitdissem_analysis::BiasPolynomial;
use bitdissem_core::channel::with_observation_noise;
use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol, ProtocolExt};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::Simulator;
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use bitdissem_obs::Obs;

/// Runs experiment E14.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e14");
    let mut report = ExperimentReport::new(
        "e14",
        "observation noise destroys bit dissemination",
        "robustness probe: per-observation misreading probability delta > 0 \
         breaks Prop 3, consensus decays, and the population equilibrates \
         near p = 1/2 regardless of the source",
    );

    let n: u64 = cfg.scale.pick(256, 1024, 4096);
    let reps = cfg.scale.pick(6, 12, 24);
    let horizon = cfg.scale.pick(400u64, 1500, 5000);
    let burn_in = horizon / 2;
    let deltas = [0.0, 0.01, 0.05, 0.1, 0.25];

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> =
        vec![Box::new(Voter::new(1).expect("valid")), Box::new(Minority::new(3).expect("valid"))];

    let mut table =
        Table::new(["protocol", "delta", "prop3", "interior F-root", "avg correct frac (late)"]);
    let mut noisy_always_violates = true;
    let mut clean_always_absorbs = true;
    let mut pinned_near_half = true;
    for protocol in &protocols {
        for &delta in &deltas {
            let noisy = with_observation_noise(protocol, delta, n).expect("valid delta");
            let prop3_ok = noisy.check_proposition3(n).is_ok();
            if delta > 0.0 {
                noisy_always_violates &= !prop3_ok;
            }

            // Interior root of the induced bias polynomial (drift target).
            let f = BiasPolynomial::from_table(
                &noisy.to_table(n).expect("valid"),
                n,
                Protocol::name(&noisy),
            );
            let rs = bitdissem_analysis::RootStructure::analyze(&f);
            let interior: Vec<f64> =
                rs.roots().iter().copied().filter(|&r| r > 0.01 && r < 0.99).collect();
            let root_desc = if f.is_identically_zero() {
                "F=0".to_string()
            } else if interior.is_empty() {
                "-".to_string()
            } else {
                interior.iter().map(|r| format!("{r:.3}")).collect::<Vec<_>>().join(",")
            };

            // Long-run behaviour from the correct consensus.
            let late_fracs = replicate_observed(
                reps,
                cfg.seed ^ ((delta * 1e4) as u64) ^ ((protocol.sample_size() as u64) << 8),
                cfg.threads,
                obs,
                |mut rng, _| {
                    let start = Configuration::correct_consensus(n, Opinion::One);
                    let mut sim = AggregateSim::new(&noisy, start).expect("valid");
                    let mut acc = 0.0;
                    let mut samples = 0u64;
                    for t in 0..horizon {
                        sim.step_round(&mut rng);
                        if t >= burn_in {
                            acc += sim.configuration().fraction_ones();
                            samples += 1;
                        }
                    }
                    acc / samples as f64
                },
            );
            let avg = Summary::from_samples(&late_fracs).expect("non-empty").mean();
            if delta == 0.0 {
                clean_always_absorbs &= avg > 0.999;
            }
            if delta >= 0.05 {
                pinned_near_half &= (avg - 0.5).abs() < 0.15;
            }
            table.row([
                protocol.name(),
                fmt_num(delta),
                if prop3_ok { "ok".to_string() } else { "violated".to_string() },
                root_desc,
                fmt_num(avg),
            ]);
        }
    }
    report.add_table(format!("n = {n}, late-time window of {horizon} rounds"), table);

    report.check(noisy_always_violates, "every delta > 0 statically violates Proposition 3");
    report.check(clean_always_absorbs, "delta = 0 control: the correct consensus is absorbing");
    report.check(
        pinned_near_half,
        "delta >= 0.05 pins the long-run fraction near 1/2: the source's \
         information is lost",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_noise_destroys_dissemination() {
        let report = run(&RunConfig::smoke(71), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }
}
