//! **E19 — re-convergence under environment perturbations.**
//!
//! The paper's setting is static: the source opinion is fixed and the
//! correct consensus is absorbing. The environment layer (DESIGN
//! decision 15) removes that assumption, so this experiment measures the
//! *recovery* behaviour the static theorems do not cover: the Voter
//! dynamics re-establishes the correct consensus after a mid-run source
//! flip (the full-distance disruption — every agent is suddenly wrong)
//! and after an adversarial reset of a quarter of the population, across
//! sample sizes `ℓ`. Each disruption opens a re-convergence clock
//! ([`bitdissem_sim::run_env`]); the table charts the resolved clocks and
//! the consensus dwell fraction per `(schedule, ℓ)` cell.

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::env::{run_env_observed, EnvRunStats, EnvSchedule, ResetSpec, ResetTrigger};
use bitdissem_sim::runner::replicate_observed;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

use crate::config::RunConfig;
use crate::report::ExperimentReport;
use crate::workload::measure_convergence_env_observed;
use bitdissem_obs::Obs;

/// Runs experiment E19.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e19");
    let mut report = ExperimentReport::new(
        "e19",
        "re-convergence time after environment perturbations",
        "dynamic-environment probe: a source flip (full-distance \
         disruption) and an adversarial quarter-population reset are \
         injected mid-run; Voter re-establishes the correct consensus and \
         the re-convergence clock is charted against the sample size l",
    );

    let n: u64 = cfg.scale.pick(48, 256, 1024);
    let reps = cfg.scale.pick(8usize, 16, 32);
    let horizon: u64 = cfg.scale.pick(9_000, 40_000, 160_000);
    let disrupt_at = horizon / 3;
    let ells = [1usize, 3, 5];

    let flip = EnvSchedule { flip_at: Some(disrupt_at), ..EnvSchedule::default() };
    let reset = EnvSchedule {
        reset: Some(ResetSpec { k: n / 4, trigger: ResetTrigger::At(disrupt_at) }),
        ..EnvSchedule::default()
    };
    // The two canonical disruptions carry the directional checks; a
    // `--env` schedule from the config rides along as an extra charted
    // row (observational — an arbitrary user schedule need not satisfy
    // the re-convergence checks).
    let mut schedules = vec![(flip, true), (reset, true)];
    if let Some(custom) = cfg.env {
        if custom != flip && custom != reset {
            schedules.push((custom, false));
        }
    }

    let mut table = Table::new([
        "schedule",
        "ell",
        "resolved",
        "mean reconverge",
        "median reconverge",
        "dwell frac",
    ]);
    let mut always_disrupts_settled_runs = true;
    let mut majority_resolves = true;
    let mut clocks_in_range = true;
    let mut dwell_dominates = true;
    for (which, &(env, checked)) in schedules.iter().enumerate() {
        let env = &env;
        for &ell in &ells {
            let voter = Voter::new(ell).expect("valid sample size");
            let seed = cfg.seed ^ ((ell as u64) << 4) ^ ((which as u64) << 12);
            let runs: Vec<EnvRunStats> =
                replicate_observed(reps, seed, cfg.threads, obs, |mut rng, _| {
                    let start = Configuration::all_wrong(n, Opinion::One);
                    let mut sim = AggregateSim::new(&voter, start).expect("valid");
                    run_env_observed(&mut sim, env, &mut rng, horizon, obs)
                });

            let settled_first =
                runs.iter().filter(|s| s.first_consensus.is_some_and(|t| t <= disrupt_at)).count();
            let clocks: Vec<f64> =
                runs.iter().flat_map(|s| s.reconverge.iter().map(|&r| r as f64)).collect();
            let resolved = runs.iter().filter(|s| !s.reconverge.is_empty()).count();
            let dwell = runs.iter().map(EnvRunStats::dwell_fraction).sum::<f64>() / reps as f64;
            if checked {
                always_disrupts_settled_runs &= settled_first * 2 >= reps;
                majority_resolves &= resolved * 2 >= reps;
                clocks_in_range &=
                    clocks.iter().all(|&c| c >= 1.0 && c <= (horizon - disrupt_at) as f64);
                dwell_dominates &= dwell > 0.3;
            }

            let (mean_s, median_s) = match Summary::from_samples(&clocks) {
                Some(s) => (fmt_num(s.mean()), fmt_num(s.median())),
                None => ("-".to_string(), "-".to_string()),
            };
            table.row([
                env.fingerprint(),
                ell.to_string(),
                format!("{resolved}/{reps}"),
                mean_s,
                median_s,
                fmt_num(dwell),
            ]);
        }
    }
    report.add_table(
        format!("n = {n}, disruption at boundary {disrupt_at}, horizon {horizon}"),
        table,
    );

    // The same flip disruption through the replicated-engine path — what
    // `run e19 --engine E --checkpoint-dir D` exercises end to end:
    // env-perturbed batches checkpoint under their own `conv+env[…]`
    // kind, so cached static outcomes never splice in on `--resume`.
    let mut engine_table = Table::new(["ell", "engine", "converged frac", "mean first consensus"]);
    let mut engine_always_converges = true;
    for &ell in &ells {
        let voter = Voter::new(ell).expect("valid sample size");
        let start = Configuration::all_wrong(n, Opinion::One);
        let batch = measure_convergence_env_observed(
            obs,
            cfg.engine,
            &flip,
            &voter,
            start,
            reps,
            horizon,
            cfg.seed ^ 0xE19 ^ ((ell as u64) << 20),
            cfg.threads,
        );
        engine_always_converges &= batch.converged_fraction() >= 0.9;
        let mean = batch.censored_summary().map_or(f64::NAN, |s| s.mean());
        engine_table.row([
            ell.to_string(),
            cfg.engine.name().to_string(),
            fmt_num(batch.converged_fraction()),
            fmt_num(mean),
        ]);
    }
    report.add_table(
        format!("flip@{disrupt_at} through the {} replication engine", cfg.engine.name()),
        engine_table,
    );

    report.check(
        engine_always_converges,
        "the replication-engine batches reach a first consensus under the \
         flip schedule (env runnable under every --engine)",
    );
    report.check(
        always_disrupts_settled_runs,
        "the correct consensus is established before the disruption in a \
         majority of replications (the clock measures recovery, not \
         initial convergence)",
    );
    report.check(
        majority_resolves,
        "a majority of replications re-converge within the horizon for \
         every (schedule, l) cell",
    );
    report.check(
        clocks_in_range,
        "every resolved re-convergence clock is positive and fits between \
         the disruption and the horizon",
    );
    report.check(
        dwell_dominates,
        "the system spends most boundaries at the correct consensus: \
         disruptions are transient, not absorbing",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reconvergence_after_perturbations() {
        let report = run(&RunConfig::smoke(19), &Obs::none());
        assert!(report.pass, "{}", report.render());
    }

    #[test]
    fn custom_env_schedule_rides_along_without_breaking_checks() {
        // A user `--env` schedule is charted observationally and must not
        // flip the directional checks; the wide engine drives the batch.
        let env: EnvSchedule = "noise:0.05".parse().unwrap();
        let cfg =
            RunConfig::smoke(23).with_env(env).with_engine(crate::config::ReplicationEngine::Wide);
        let report = run(&cfg, &Obs::none());
        assert!(report.pass, "{}", report.render());
        assert!(report.render().contains("noise:0.05"), "custom schedule is charted");
    }
}
