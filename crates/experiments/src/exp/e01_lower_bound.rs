//! **E1 — Theorem 1/12: the almost-linear lower bound for constant `ℓ`.**
//!
//! For each constant-sample-size protocol, the [`LowerBoundWitness`] picks
//! the adversarial correct opinion and initial configuration of the
//! Theorem 12 proof; we then measure how many rounds the process needs to
//! cross the theorem's threshold (`a₃·n` resp. `a₁·n`). The theorem predicts
//! `Ω(n^{1−ε})` for every `ε > 0`. Two empirical signatures confirm it:
//!
//! * **Voter-like protocols** (`F_n ≡ 0`): crossings happen by diffusion,
//!   so the median crossing time grows like `n` — its log–log slope is ~1;
//! * **Drift protocols** (Cases 1/2): the drift points *away* from the
//!   threshold, so crossings are essentially never observed even with a
//!   `50n`-round budget — an even stronger slowness certificate (the true
//!   crossing time is exponential; the theorem only claims `n^{1−ε}`).

use bitdissem_analysis::{LowerBoundWitness, WitnessCase};
use bitdissem_core::dynamics::{Minority, TwoChoices, Voter};
use bitdissem_core::Protocol;
use bitdissem_stats::regression::fit_power_law;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

use crate::config::{RunConfig, Scale};
use crate::report::ExperimentReport;
use crate::workload::{measure_crossing_observed, pow2_sweep, OutcomeBatch};
use bitdissem_obs::Obs;

/// Runs experiment E1.
#[must_use]
pub fn run(cfg: &RunConfig, obs: &Obs) -> ExperimentReport {
    let _scope = obs.scope("e1");
    let mut report = ExperimentReport::new(
        "e1",
        "lower bound: threshold-crossing time for constant sample size",
        "Theorem 1: any memory-less protocol with constant l needs \
         Omega(n^{1-eps}) rounds from the adversarial configuration",
    );

    let ns = match cfg.scale.pick(0, 1, 2) {
        0 => pow2_sweep(64, 4),
        1 => pow2_sweep(128, 5),
        _ => pow2_sweep(256, 7),
    };
    let reps = cfg.scale.pick(48, 64, 128);
    let budget_factor = cfg.scale.pick(50, 100, 200);
    // Diffusive constants blur the slope at smoke sizes; asymptotically it
    // approaches 1.
    let min_exponent = match cfg.scale {
        Scale::Smoke => 0.55,
        Scale::Standard => 0.65,
        Scale::Full => 0.75,
    };

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1).expect("valid")),
        Box::new(Minority::new(3).expect("valid")),
        Box::new(Minority::new(5).expect("valid")),
        Box::new(TwoChoices::new()),
    ];

    let mut table =
        Table::new(["protocol", "case", "n", "median cross", "frac crossed", "n^{0.8}"]);
    for protocol in &protocols {
        let mut series_n = Vec::new();
        let mut series_t = Vec::new();
        let mut last_case = WitnessCase::VoterLike;
        let mut last_frac = 1.0;
        for &n in &ns {
            let witness = LowerBoundWitness::construct(protocol, n).expect("valid protocol");
            last_case = witness.case();
            let budget = budget_factor * n;
            let outcomes = measure_crossing_observed(
                obs,
                protocol,
                &witness,
                reps,
                budget,
                cfg.seed ^ n,
                cfg.threads,
            );
            let batch = OutcomeBatch::new(outcomes, budget);
            let median = batch.censored_summary().expect("non-empty").median();
            last_frac = batch.converged_fraction();
            table.row([
                protocol.name(),
                witness.case().to_string(),
                n.to_string(),
                fmt_num(median),
                fmt_num(last_frac),
                fmt_num((n as f64).powf(0.8)),
            ]);
            series_n.push(n as f64);
            series_t.push(median.max(1.0));
        }
        match last_case {
            WitnessCase::VoterLike => {
                if let Some((b, _c, r2)) = fit_power_law(&series_n, &series_t) {
                    report.check(
                        b >= min_exponent,
                        format!(
                            "{}: median crossing scales like n^{b:.2} (R2={r2:.3}) — \
                             almost-linear diffusion",
                            protocol.name()
                        ),
                    );
                } else {
                    report.check(false, format!("{}: power-law fit failed", protocol.name()));
                }
            }
            WitnessCase::NegativeDrift | WitnessCase::PositiveDrift => {
                report.check(
                    last_frac <= 0.25,
                    format!(
                        "{}: at n = {}, only {:.0}% of runs crossed within {budget_factor}n \
                         rounds — far slower than n^{{1-eps}}",
                        protocol.name(),
                        ns.last().expect("non-empty"),
                        last_frac * 100.0
                    ),
                );
            }
        }
    }
    report.add_table(
        "median rounds to cross the Theorem-12 threshold from the adversarial start",
        table,
    );
    report.finding(format!(
        "budget = {budget_factor}*n rounds; crossing times are right-censored at the budget"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_confirms_almost_linear_scaling() {
        let report = run(&RunConfig::smoke(7), &Obs::none());
        assert!(report.pass, "{}", report.render());
        assert_eq!(report.tables.len(), 1);
        // 4 protocols × 4 sizes.
        assert_eq!(report.tables[0].1.len(), 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&RunConfig::smoke(3), &Obs::none()).render();
        let b = run(&RunConfig::smoke(3), &Obs::none()).render();
        assert_eq!(a, b);
    }
}
