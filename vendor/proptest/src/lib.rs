//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset of its API this workspace uses.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; it is not minimized.
//! * **Deterministic.** Each `proptest!`-generated test derives its RNG seed
//!   from the test's module path and name, so runs are reproducible and
//!   hermetic (no `proptest-regressions` files).
//! * **Edge-case bias.** Range strategies return an endpoint with small
//!   probability, then sample uniformly — a lightweight version of
//!   upstream's bias toward boundary values.
//!
//! Supported surface: `Strategy` (with `prop_map` / `prop_flat_map`),
//! integer/float range strategies, tuple strategies, `Just`,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Derives a deterministic RNG seed from a test's fully qualified name
/// (FNV-1a). Not part of the public API.
#[doc(hidden)]
#[must_use]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property-based tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn sum_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $( $strat, )+ );
                let mut __rng = $crate::test_runner::TestRng::new($crate::__seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                ));
                for _ in 0..__config.cases {
                    #[allow(unused_mut, unused_parens)]
                    let ( $( $pat, )+ ) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    // The closure gives `prop_assume!`'s `?` an enclosing
                    // function; it is not redundant.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    // A rejected case (prop_assume) is simply skipped.
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::core::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Assumptions skip cases without failing.
        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..5).prop_flat_map(|len| {
            crate::collection::vec(0.0f64..=1.0, len)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }

        #[test]
        fn tuples_and_mut_patterns(mut v in crate::collection::vec(0i64..10, 1..4),
                                   (a, b) in (0u32..5, 0u32..5)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(a < 5 && b < 5);
        }
    }
}
