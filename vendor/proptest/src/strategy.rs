//! The `Strategy` trait and the built-in strategies.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no intermediate `ValueTree`: a
/// strategy generates plain values and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<T, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        T: Strategy,
        F: Fn(Self::Value) -> T,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One-in-`EDGE_ODDS` generated values is a range endpoint.
const EDGE_ODDS: u64 = 16;

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                match rng.below(EDGE_ODDS) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                match rng.below(EDGE_ODDS) {
                    0 => lo,
                    1 => hi,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if rng.below(EDGE_ODDS) == 0 {
                    return self.start;
                }
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                match rng.below(EDGE_ODDS) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.next_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = TestRng::new(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi, "edge bias should hit both endpoints");
        for _ in 0..500 {
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_and_tuples() {
        let mut rng = TestRng::new(2);
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        let pair = (1usize..4).prop_flat_map(|len| (Just(len), 0.0f64..1.0));
        for _ in 0..100 {
            let (len, x) = pair.generate(&mut rng);
            assert!((1..4).contains(&len));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }
}
