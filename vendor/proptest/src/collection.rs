//! Collection strategies (`vec`).

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`]: a fixed length or a length range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { lo: len, hi_inclusive: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::new(7);
        let fixed = vec(0.0f64..=1.0, 5usize);
        for _ in 0..50 {
            assert_eq!(fixed.generate(&mut rng).len(), 5);
        }
        let ranged = vec(0u64..10, 1..4usize);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_of_tuples() {
        let mut rng = TestRng::new(8);
        let pts = vec((0.0f64..100.0, -100.0f64..100.0), 3..40usize);
        let v = pts.generate(&mut rng);
        assert!((3..40).contains(&v.len()));
    }
}
