//! Test-run configuration and the deterministic RNG behind value
//! generation.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep offline test runs
    /// fast; the workspace's properties are invariant checks, not
    /// counterexample hunts.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` to skip a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject;

/// Deterministic generator used for value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform `u64` in `[0, span)` (`span > 0`), unbiased via rejection.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling span");
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn default_config() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
