//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the *subset* of the `rand 0.9`
//! API it actually uses: the [`Rng`] / [`SeedableRng`] traits and a real
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the same
//! generator family `rand 0.9` uses on 64-bit targets). Statistical quality
//! and determinism are preserved; the exact output streams are not
//! guaranteed to match upstream `rand` bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `StandardUniform`
/// distribution of upstream `rand`, specialized to the primitives we need).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

impl UniformSample for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl UniformSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Accept only draws below the largest multiple of `span` that fits in
    // 2^64, so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX.wrapping_rem(span).wrapping_add(1)).wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // i128 arithmetic: a plain u128 subtraction would sign-extend
                // negative bounds and underflow.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return <$t as UniformSample>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as UniformSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as UniformSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution
    /// (integers: full domain; floats: `[0, 1)`; bool: fair coin).
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` by expanding it with SplitMix64, as
    /// `rand_core` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!((3..17u64).contains(&rng.random_range(3..17u64)));
            assert!((1..=6usize).contains(&rng.random_range(1..=6usize)));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let s = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = rng.random_range(5..5u64);
    }
}
