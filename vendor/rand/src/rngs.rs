//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman & Vigna),
/// the algorithm behind `rand 0.9`'s 64-bit `SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not be seeded with the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: first output is
        // rotl(1 + 4, 23) + 1 = 5 << 23 | ... = 41943041.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 41_943_041);
        assert_eq!(rng.next_u64(), 58_720_359);
    }
}
