//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, and this workspace uses
//! serde only as a *compile-time marker* (`#[derive(Serialize, Deserialize)]`
//! and `T: Serialize` bounds) — nothing actually serializes through serde's
//! data model; JSON output in this repo goes through `bitdissem-obs`'s
//! hand-rolled writer. This stub therefore provides blanket-implemented
//! marker traits and no-op derive macros, which keeps every existing bound
//! and derive compiling unchanged. If real serde interop is ever needed,
//! replace this vendored crate with the upstream one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    struct Example {
        _x: u32,
    }

    fn assert_serialize<T: crate::Serialize>() {}
    fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn markers_are_universal() {
        assert_serialize::<Example>();
        assert_serialize::<Vec<String>>();
        assert_deserialize::<Example>();
    }
}
