//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset of its API this workspace uses.
//!
//! It is a *real* (if simple) harness: each benchmark is warmed up, then
//! timed over `sample_size` samples whose per-sample iteration count is
//! calibrated so one sample lasts roughly `measurement_time / sample_size`.
//! Output is a single line per benchmark with min / median / max
//! nanoseconds per iteration. There is no statistical outlier analysis, no
//! HTML report, and no baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped in [`Bencher::iter_batched`]. The
/// stand-in times each routine call individually, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration target per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Upstream parses CLI filters here; the stand-in accepts everything.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&id.into());
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group (`group/name` in the output).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut scoped = self.criterion.clone();
        if let Some(n) = self.sample_size {
            scoped = scoped.sample_size(n);
        }
        scoped.bench_function(full, f);
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `f` (the routine's result is passed through
    /// [`black_box`]).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up doubles as calibration of iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmarks `routine` on inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }

        self.samples_ns.clear();
        // One timed routine call per sample; setup stays untimed.
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let max = self.samples_ns[self.samples_ns.len() - 1];
        println!("{id:<50} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, in either the list or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = fast_criterion();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with("s"));
    }
}
