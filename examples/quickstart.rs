//! Quickstart: simulate the bit-dissemination problem end to end.
//!
//! Builds the Minority dynamics, constructs the paper's adversarial
//! configuration for it, simulates until consensus, and prints the
//! trajectory alongside the analytical picture (bias polynomial roots and
//! the Theorem 12 witness).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_core::dynamics::Minority;
use bitdissem_core::Protocol;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::{run_to_consensus, Outcome, Simulator};
use bitdissem_sim::trajectory::Trajectory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    let protocol = Minority::new(3)?;
    println!("protocol: {}", protocol.name());

    // The analytical picture: the bias polynomial and its roots.
    let bias = BiasPolynomial::build(&protocol, n)?;
    let structure = RootStructure::analyze(&bias);
    println!("bias polynomial F_n(p) = {}", bias.as_polynomial());
    println!("roots in [0,1]: {:?}", structure.roots());
    for &(lo, hi, sign) in structure.sign_intervals() {
        println!(
            "  F_n is {} on ({lo:.3}, {hi:.3})",
            if sign > 0 { "positive" } else { "negative" }
        );
    }

    // The adversarial instance of Theorem 12.
    let witness = LowerBoundWitness::construct(&protocol, n)?;
    println!(
        "witness: {} | start {} | must cross X = {} to converge",
        witness.case(),
        witness.start(),
        witness.threshold()
    );
    println!(
        "Theorem 1 predicts >= n^0.9 = {:.0} rounds to cross",
        witness.predicted_min_rounds(0.1)
    );

    // Simulate.
    let mut sim = AggregateSim::new(&protocol, witness.start())?;
    let mut rng = rng_from(2024);
    let mut trajectory = Trajectory::new(32);
    let budget = 200 * n;
    let mut crossed_at = None;
    let mut t = 0u64;
    let outcome = loop {
        let x = sim.configuration().ones();
        trajectory.record(x);
        if crossed_at.is_none() && witness.crossed(x) {
            crossed_at = Some(t);
        }
        if sim.configuration().is_correct_consensus() {
            break Outcome::Converged { rounds: t };
        }
        if t >= budget {
            break Outcome::TimedOut { rounds: budget };
        }
        sim.step_round(&mut rng);
        t += 1;
    };

    println!("\ntrajectory (round, X_t/n):");
    for (round, x) in trajectory.iter() {
        println!("  {round:>8}  {:.4}", x as f64 / n as f64);
    }
    match outcome {
        Outcome::Converged { rounds } => {
            println!("\nconverged after {rounds} rounds");
        }
        Outcome::TimedOut { rounds } => {
            println!("\nstill not converged after {rounds} rounds (the lower bound at work)");
        }
    }
    if let Some(c) = crossed_at {
        println!("threshold crossed at round {c}");
    } else {
        println!("threshold never crossed within the budget");
    }
    match run_to_consensus(&mut sim, &mut rng, 0) {
        Outcome::Converged { .. } => println!("final state is the correct consensus"),
        Outcome::TimedOut { .. } => println!("final state: {}", sim.configuration()),
    }
    Ok(())
}
