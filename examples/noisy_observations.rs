//! How much observation noise can bit dissemination survive? (None.)
//!
//! Applies the per-observation flip channel to the Voter and Minority
//! dynamics, prints the induced decision tables and bias-polynomial roots,
//! and simulates the long-run fraction of correct opinions — demonstrating
//! that any persistent misreading probability destroys the source's
//! influence (experiment E14 at example scale).
//!
//! ```sh
//! cargo run --release --example noisy_observations [-- <n>]
//! ```

use bitdissem_analysis::{BiasPolynomial, RootStructure};
use bitdissem_core::channel::with_observation_noise;
use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion, Protocol, ProtocolExt};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::Simulator;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4096);
    let voter = Voter::new(3)?;

    println!("per-observation flip channel applied to {} at n = {n}\n", voter.name());
    let mut table =
        Table::new(["delta", "g~(0)", "g~(3)", "prop3", "interior roots", "late correct frac"]);
    for &delta in &[0.0, 0.005, 0.02, 0.1, 0.3] {
        let noisy = with_observation_noise(&voter, delta, n)?;
        let t = noisy.to_table(n)?;
        let f = BiasPolynomial::from_table(&t, n, Protocol::name(&noisy));
        let rs = RootStructure::analyze(&f);
        let interior: Vec<String> = rs
            .roots()
            .iter()
            .filter(|&&r| r > 0.001 && r < 0.999)
            .map(|r| format!("{r:.3}"))
            .collect();

        // Simulate from the correct consensus and average late-time states.
        let mut sim = AggregateSim::new(&noisy, Configuration::correct_consensus(n, Opinion::One))?;
        let mut rng = rng_from(7);
        let horizon = 2_000;
        let mut acc = 0.0;
        let mut count = 0u64;
        for round in 0..horizon {
            sim.step_round(&mut rng);
            if round >= horizon / 2 {
                acc += sim.configuration().fraction_ones();
                count += 1;
            }
        }
        table.row([
            fmt_num(delta),
            fmt_num(t.g(Opinion::Zero, 0)),
            fmt_num(t.g(Opinion::One, 3)),
            if noisy.check_proposition3(n).is_ok() { "ok".into() } else { "violated".to_string() },
            if interior.is_empty() { "-".to_string() } else { interior.join(",") },
            fmt_num(acc / count as f64),
        ]);
    }
    println!("{table}");
    println!("delta = 0 keeps the consensus absorbing (fraction stays 1.0);");
    println!("any delta > 0 gives the bias polynomial an interior root at 1/2 and");
    println!("the population forgets the source within a few hundred rounds.");
    Ok(())
}
