//! Where does the Minority dynamics become fast?
//!
//! The paper's open question: the lower bound says constant `ℓ` is slow, the
//! upper bound of [15] needs `ℓ = Ω(√(n log n))` — and "simulations suggest
//! that its convergence might be fast even when the sample size is
//! qualitatively small". This example reproduces those simulations: at a
//! fixed `n` it sweeps `ℓ` and prints the empirical transition from the
//! almost-linear regime to the poly-logarithmic one.
//!
//! ```sh
//! cargo run --release --example minority_phase_transition [-- <n> <reps>]
//! ```

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::dynamics::Minority;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::{run_to_consensus, Outcome};
use bitdissem_sim::runner::replicate;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);

    let fast_ell = Minority::fast_sample_size(n);
    let polylog = (n as f64).ln().powi(2);
    println!("n = {n}, sqrt(n ln n) = {fast_ell}, ln^2 n = {polylog:.1}, reps = {reps}\n");

    let mut ells: Vec<usize> = vec![1, 2, 3, 5, 9, 17, 33, 65, 129, 257, 513];
    ells.retain(|&e| e < fast_ell);
    ells.push(fast_ell);

    let budget = 16 * n;
    let mut table = Table::new(["l", "median T", "frac converged", "T / ln^2 n", "regime"]);
    for ell in ells {
        let minority = Minority::new(ell)?;
        let witness = LowerBoundWitness::construct(&minority, n)?;
        let outcomes = replicate(reps, 11 ^ (ell as u64), None, |mut rng, _| {
            let mut sim = AggregateSim::new(&minority, witness.start()).expect("valid");
            run_to_consensus(&mut sim, &mut rng, budget)
        });
        let censored: Vec<f64> = outcomes.iter().map(|o| o.rounds_censored() as f64).collect();
        let median = Summary::from_samples(&censored).expect("non-empty").median();
        let frac = outcomes.iter().filter(|o| matches!(o, Outcome::Converged { .. })).count()
            as f64
            / reps as f64;
        let regime = if median <= 20.0 * polylog && frac > 0.5 { "fast" } else { "slow" };
        table.row([
            ell.to_string(),
            fmt_num(median),
            fmt_num(frac),
            fmt_num(median / polylog),
            regime.to_string(),
        ]);
    }
    println!("{table}");
    println!("(budget {budget} rounds; 'slow' medians are right-censored)");
    Ok(())
}
