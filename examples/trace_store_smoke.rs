//! Trace-store smoke: crash a columnar trace mid-block, recover, repair.
//!
//! Records a real smoke experiment, replays its event stream through a
//! `ColumnarSink` whose writer injects short writes and dies mid-stream
//! (the torn-tail scenario the format is designed for), then proves the
//! recovery contract end to end:
//!
//! 1. the reader recovers every complete block and flags the torn tail,
//! 2. `repair` truncates the file back to the recovered prefix, and
//! 3. the repaired trace re-reads clean with the same event count.
//!
//! Usage: `cargo run --release --example trace_store_smoke [-- out.bct]`
//!
//! The repaired trace is left at the output path so CI can run
//! `bitdissem trace` on it and archive the artifact. Exits non-zero if
//! any step of the contract fails.

use std::sync::Arc;

use bitdissem_experiments::{registry, RunConfig};
use bitdissem_obs::columnar::{repair, ColumnarReader, ColumnarSink};
use bitdissem_obs::{EventSink, FaultyWriter, MemorySink, Obs};

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "trace_smoke.bct".to_string());

    // Record a real experiment stream in memory first, so the torn file
    // carries genuine batch headers, trajectories, and results.
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::none().with_sink(Arc::clone(&sink) as _);
    let cfg = RunConfig::smoke(42);
    registry::run_observed("e2", &cfg, &obs).expect("e2 is a registered experiment");
    let stream = sink.events();
    println!("recorded {} events from e2 (smoke, seed 42)", stream.len());

    // First pass: measure the healthy encoding so the crash can be
    // injected at ~80% of the file, guaranteed mid-stream.
    let probe = std::env::temp_dir().join(format!("trace_smoke_probe_{}.bct", std::process::id()));
    {
        let healthy = ColumnarSink::create(&probe).expect("create probe sink");
        for ev in &stream {
            healthy.emit(ev);
        }
    }
    let healthy_len = std::fs::metadata(&probe).expect("probe written").len() as usize;
    let _ = std::fs::remove_file(&probe);
    let tear_at = healthy_len * 4 / 5;
    println!("healthy trace is {healthy_len} bytes; injecting writer death at byte {tear_at}");

    // Crash pass: short writes (7-byte cap) plus a hard tear. The sink
    // swallows the I/O errors by contract — the simulation never aborts —
    // so the file on disk simply ends wherever the writer died.
    let file = std::fs::File::create(&out).expect("create output trace");
    let faulty = FaultyWriter::new(file).with_short_writes(7).with_tear_after(tear_at);
    let sink = ColumnarSink::from_writer(Box::new(faulty)).expect("wrap faulty writer");
    for ev in &stream {
        sink.emit(ev);
    }
    drop(sink);

    let torn = ColumnarReader::open(&out).expect("open torn trace");
    println!(
        "torn read: {} events in {} blocks, torn_tail={} (offset {:?})",
        torn.event_count(),
        torn.block_count(),
        torn.torn_tail(),
        torn.torn_offset()
    );
    if !torn.torn_tail() {
        eprintln!("FAIL: injected crash did not leave a torn tail");
        std::process::exit(1);
    }
    let recovered = torn.event_count();
    if recovered == 0 || recovered >= stream.len() {
        eprintln!("FAIL: expected a proper prefix, recovered {recovered}/{}", stream.len());
        std::process::exit(1);
    }

    let stats = repair(std::path::Path::new(&out)).expect("repair torn trace");
    println!(
        "repair: kept {} blocks / {} events, truncated {} bytes",
        stats.blocks_kept, stats.events_kept, stats.bytes_truncated
    );
    let clean = ColumnarReader::open(&out).expect("re-open repaired trace");
    if clean.torn_tail() || clean.event_count() != recovered {
        eprintln!(
            "FAIL: repaired trace is not clean ({} events, torn_tail={})",
            clean.event_count(),
            clean.torn_tail()
        );
        std::process::exit(1);
    }
    println!("repaired trace at '{out}' re-reads clean: {recovered} events");
}
