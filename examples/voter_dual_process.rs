//! The Voter dual: coalescing random walks (paper Figure 4 / Appendix B).
//!
//! Runs the backward coalescing-random-walk process next to the forward
//! Voter dynamics and shows that both times concentrate around `Θ(n log n)`
//! — the mechanism behind the Theorem 2 upper bound.
//!
//! ```sh
//! cargo run --release --example voter_dual_process [-- <reps>]
//! ```

use bitdissem_core::dynamics::Voter;
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::dual::CoalescingDual;
use bitdissem_sim::run::run_to_consensus;
use bitdissem_sim::runner::replicate;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(25);
    let ns: Vec<u64> = (6..=12).map(|k| 1u64 << k).collect();
    let voter = Voter::new(1)?;

    println!("backward dual coalescence vs forward Voter convergence ({reps} reps)\n");
    let mut table =
        Table::new(["n", "dual median", "forward median", "dual/(n ln n)", "forward/(n ln n)"]);
    for &n in &ns {
        let nlogn = n as f64 * (n as f64).ln();
        let cap = (20.0 * nlogn) as u64;

        let dual: Vec<f64> = replicate(reps, n, None, |mut rng, _| {
            CoalescingDual::new(n).run_to_absorption(&mut rng, cap).map_or(cap as f64, |t| t as f64)
        });
        let forward: Vec<f64> = replicate(reps, n ^ 0xF0, None, |mut rng, _| {
            let start = Configuration::all_wrong(n, Opinion::One);
            let mut sim = AggregateSim::new(&voter, start).expect("valid");
            run_to_consensus(&mut sim, &mut rng, cap).rounds_censored() as f64
        });

        let d = Summary::from_samples(&dual).expect("non-empty").median();
        let f = Summary::from_samples(&forward).expect("non-empty").median();
        table.row([n.to_string(), fmt_num(d), fmt_num(f), fmt_num(d / nlogn), fmt_num(f / nlogn)]);
    }
    println!("{table}");
    println!("both ratios flatten: the dual absorption time and the forward");
    println!("convergence time are Theta(n log n), as in Appendix B.");
    Ok(())
}
