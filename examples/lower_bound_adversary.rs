//! The Theorem 12 adversary in action.
//!
//! For each constant-sample-size dynamics, constructs the adversarial
//! initial configuration from the bias-polynomial root structure and
//! measures how long the process takes to cross the theorem's threshold as
//! `n` doubles — the empirical counterpart of `T(n) = Ω(n^{1−ε})`.
//!
//! ```sh
//! cargo run --release --example lower_bound_adversary [-- <reps>]
//! ```

use bitdissem_analysis::LowerBoundWitness;
use bitdissem_core::dynamics::{Minority, TwoChoices, Voter};
use bitdissem_core::Protocol;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::Simulator;
use bitdissem_sim::runner::replicate;
use bitdissem_stats::regression::fit_power_law;
use bitdissem_stats::table::fmt_num;
use bitdissem_stats::{Summary, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(15);
    let ns: Vec<u64> = (7..=12).map(|k| 1u64 << k).collect();

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1)?),
        Box::new(Minority::new(3)?),
        Box::new(Minority::new(5)?),
        Box::new(TwoChoices::new()),
    ];

    println!("threshold-crossing times from the Theorem-12 adversarial start");
    println!("({reps} replications per point; times right-censored at 100n rounds)\n");

    let mut table = Table::new(["protocol", "case", "n", "median crossing", "n^0.8"]);
    for protocol in &protocols {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &ns {
            let witness = LowerBoundWitness::construct(protocol, n)?;
            let budget = 100 * n;
            let times = replicate(reps, 7 ^ n, None, |mut rng, _| {
                let mut sim = AggregateSim::new(protocol, witness.start()).expect("valid");
                for t in 0..budget {
                    if witness.crossed(sim.configuration().ones()) {
                        return t as f64;
                    }
                    sim.step_round(&mut rng);
                }
                budget as f64
            });
            let median = Summary::from_samples(&times).expect("non-empty").median();
            table.row([
                protocol.name(),
                witness.case().to_string(),
                n.to_string(),
                fmt_num(median),
                fmt_num((n as f64).powf(0.8)),
            ]);
            xs.push(n as f64);
            ys.push(median.max(1.0));
        }
        if let Some((b, c, r2)) = fit_power_law(&xs, &ys) {
            println!(
                "{}: median crossing ~ {:.2} * n^{:.2} (R^2 = {:.3})",
                protocol.name(),
                c,
                b,
                r2
            );
        }
    }
    println!("\n{table}");
    println!("Theorem 1: for constant sample size the exponent cannot drop below 1 - eps.");
    Ok(())
}
