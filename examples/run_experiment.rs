//! Run any registered experiment by id and print its report.
//!
//! ```sh
//! cargo run --release --example run_experiment -- list
//! cargo run --release --example run_experiment -- e1 [smoke|standard|full] [seed]
//! cargo run --release --example run_experiment -- all [smoke|standard|full] [seed]
//! ```

use std::str::FromStr;

use bitdissem_experiments::{registry, RunConfig, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let id = args.next().unwrap_or_else(|| "list".to_string());
    let scale = args.next().map(|s| Scale::from_str(&s)).transpose()?.unwrap_or(Scale::Standard);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2024);
    let cfg = RunConfig { scale, seed, threads: None, engine: Default::default(), env: None };

    match id.as_str() {
        "list" => {
            println!("available experiments (run with: run_experiment <id> [scale] [seed]):\n");
            for entry in registry::all() {
                println!("  {:<4} {}", entry.id, entry.description);
            }
        }
        "all" => {
            let mut failures = Vec::new();
            for entry in registry::all() {
                let report = registry::run(entry.id, &cfg).expect("registered id");
                println!("{report}");
                if !report.pass {
                    failures.push(entry.id);
                }
            }
            if failures.is_empty() {
                println!("all experiments passed their directional checks");
            } else {
                println!("experiments with failed checks: {failures:?}");
                std::process::exit(1);
            }
        }
        id => match registry::run(id, &cfg) {
            Some(report) => {
                println!("{report}");
                if !report.pass {
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; use 'list' to see the registry");
                std::process::exit(2);
            }
        },
    }
    Ok(())
}
