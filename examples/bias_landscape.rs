//! Export the bias-polynomial landscape of the named dynamics as CSV —
//! plot-ready data behind the paper's Figures 2 and 3.
//!
//! ```sh
//! cargo run --release --example bias_landscape [-- <grid-points>] > landscape.csv
//! ```

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_core::dynamics::{Majority, Minority, PowerVoter, ThresholdRule, TwoChoices, Voter};
use bitdissem_core::Protocol;
use bitdissem_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let n = 65_536;

    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Voter::new(1)?),
        Box::new(Minority::new(3)?),
        Box::new(Minority::new(5)?),
        Box::new(Majority::new(3)?),
        Box::new(TwoChoices::new()),
        Box::new(PowerVoter::new(3, 2.0)?),
        Box::new(PowerVoter::new(3, 0.5)?),
        Box::new(ThresholdRule::new(4, 1)?),
        Box::new(ThresholdRule::new(4, 4)?),
    ];

    let biases: Vec<(String, BiasPolynomial)> = protocols
        .iter()
        .map(|p| Ok::<_, Box<dyn std::error::Error>>((p.name(), BiasPolynomial::build(p, n)?)))
        .collect::<Result<_, _>>()?;

    // CSV of F_n(p) curves.
    let mut headers = vec!["p".to_string()];
    headers.extend(biases.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(headers);
    for i in 0..=grid {
        let p = i as f64 / grid as f64;
        let mut row = vec![format!("{p:.6}")];
        row.extend(biases.iter().map(|(_, f)| format!("{:.9}", f.eval(p))));
        table.row(row);
    }
    print!("{}", table.to_csv());

    // Root/witness summary on stderr so the CSV stays clean.
    for (name, f) in &biases {
        let rs = RootStructure::analyze(f);
        let w = LowerBoundWitness::from_bias(f);
        eprintln!(
            "{name}: roots {:?} | {} | start X0/n = {:.4}",
            rs.roots().iter().map(|r| (r * 1e4).round() / 1e4).collect::<Vec<_>>(),
            w.case(),
            w.start().ones() as f64 / n as f64,
        );
    }
    Ok(())
}
