//! The stateful (constant-memory) engine agrees with the binary engine on
//! the memory-less special case — full convergence-time distributions are
//! compared with the Kolmogorov–Smirnov test.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::stateful::{check_stateful_absorption, Memoryless, UndecidedState};
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::{run_to_consensus, Outcome};
use bitdissem_sim::stateful::StatefulSim;
use bitdissem_stats::compare::{ks_statistic, same_distribution};

fn binary_taus(n: u64, ones: u64, reps: u64, seed: u64) -> Vec<f64> {
    let voter = Voter::new(1).unwrap();
    (0..reps)
        .map(|rep| {
            let mut rng = rng_from(replication_seed(seed, rep));
            let start = Configuration::new(n, Opinion::One, ones).unwrap();
            let mut sim = AggregateSim::new(&voter, start).unwrap();
            match run_to_consensus(&mut sim, &mut rng, 10_000_000) {
                Outcome::Converged { rounds } => rounds as f64,
                Outcome::TimedOut { .. } => panic!("voter must converge"),
            }
        })
        .collect()
}

fn stateful_taus(n: u64, ones: u64, reps: u64, seed: u64) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            let mut rng = rng_from(replication_seed(seed, rep));
            let mut sim =
                StatefulSim::new(Memoryless::new(Voter::new(1).unwrap()), n, Opinion::One, ones);
            sim.run_to_display_consensus(&mut rng, 10_000_000).expect("voter must converge") as f64
        })
        .collect()
}

#[test]
fn memoryless_adapter_has_the_same_convergence_law() {
    let n = 48;
    let ones = 16;
    let reps = 600;
    let a = binary_taus(n, ones, reps, 0x51);
    let b = stateful_taus(n, ones, reps, 0x52);
    let d = ks_statistic(&a, &b).unwrap();
    assert!(
        same_distribution(&a, &b, 0.001),
        "KS statistic {d} rejects equality of the two engines"
    );
}

#[test]
fn minority_adapter_one_round_mean_matches_exact_chain() {
    use bitdissem_markov::AggregateChain;
    let n = 64u64;
    let x0 = 40u64;
    let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
    let exact = chain.expected_next(x0);
    let reps = 20_000u64;
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(0x53, rep));
        let mut sim =
            StatefulSim::new(Memoryless::new(Minority::new(3).unwrap()), n, Opinion::One, x0);
        sim.step_round(&mut rng);
        total += sim.displayed_ones() as f64;
    }
    let mean = total / reps as f64;
    assert!((mean - exact).abs() < 0.2, "stateful mean {mean} vs exact {exact}");
}

#[test]
fn usd_absorption_check_and_behavior_are_consistent() {
    // The static check and the dynamic behaviour must agree: USD keeps a
    // display consensus forever.
    for ell in [1usize, 2, 5] {
        let usd = UndecidedState::new(ell).unwrap();
        assert!(check_stateful_absorption(&usd, 100).is_ok());
        let n = 40;
        let mut sim = StatefulSim::new(usd, n, Opinion::Zero, 0);
        let mut rng = rng_from(0x54 + ell as u64);
        for _ in 0..100 {
            sim.step_round(&mut rng);
            assert!(sim.is_display_consensus(), "l={ell}");
        }
    }
}

#[test]
fn usd_is_slower_than_voter_from_the_adversarial_start() {
    // The E13 headline at integration-test scale: from all-decided-wrong,
    // the undecided-state dynamics fails to converge within a budget the
    // Voter meets easily.
    use bitdissem_core::stateful::usd_states;
    let n = 96u64;
    let budget = 40 * n;
    let reps = 6u64;

    let mut usd_converged = 0;
    let mut voter_converged = 0;
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(0x55, rep));
        let usd = UndecidedState::new(1).unwrap();
        let mut counts = vec![0u64; 4];
        counts[usd_states::DECIDED_ZERO] = n - 1;
        let mut sim = StatefulSim::with_state_counts(usd, n, Opinion::One, counts);
        if sim.run_to_display_consensus(&mut rng, budget).is_some() {
            usd_converged += 1;
        }

        let mut rng = rng_from(replication_seed(0x56, rep));
        let mut vsim =
            StatefulSim::new(Memoryless::new(Voter::new(1).unwrap()), n, Opinion::One, 1);
        if vsim.run_to_display_consensus(&mut rng, budget).is_some() {
            voter_converged += 1;
        }
    }
    assert_eq!(voter_converged, reps, "voter control must converge");
    assert!(
        usd_converged <= reps / 2,
        "USD converged in {usd_converged}/{reps} runs — expected the majority-like stall"
    );
}
