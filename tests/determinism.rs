//! Whole-harness determinism: experiment reports are bit-for-bit
//! reproducible for a fixed seed, independent of thread scheduling —
//! the property that makes EXPERIMENTS.md regenerable.

use bitdissem_experiments::{registry, RunConfig, Scale};

fn render(id: &str, threads: Option<usize>, seed: u64) -> String {
    let cfg =
        RunConfig { scale: Scale::Smoke, seed, threads, engine: Default::default(), env: None };
    registry::run(id, &cfg).expect("known id").render()
}

#[test]
fn cheap_experiments_are_bitwise_deterministic() {
    // The cheapest experiments across the harness's different code paths:
    // pure analysis (e5), exact solvers (e15, e16, e17), and sampling-based
    // with the threaded runner (e8).
    for id in ["e5", "e15", "e16", "e17", "e8"] {
        let a = render(id, Some(1), 99);
        let b = render(id, Some(1), 99);
        assert_eq!(a, b, "{id}: same seed must reproduce the report exactly");
    }
}

#[test]
fn thread_count_does_not_change_results() {
    for id in ["e8", "e5"] {
        let single = render(id, Some(1), 7);
        let multi = render(id, Some(8), 7);
        assert_eq!(single, multi, "{id}: results must not depend on scheduling");
    }
}

#[test]
fn different_seeds_change_sampled_results_but_not_exact_ones() {
    // Sampling-based experiment: tables differ across seeds.
    let a = render("e8", Some(2), 1);
    let b = render("e8", Some(2), 2);
    assert_ne!(a, b, "e8 is sampling-based; different seeds must differ");
    // Exact-solver experiment: the numbers are seed-independent (only the
    // synthesized-search start perturbations use the seed in e16's case —
    // e16 uses no randomness at all).
    let a = render("e16", Some(2), 1);
    let b = render("e16", Some(2), 2);
    assert_eq!(a, b, "e16 is exact; seeds must not matter");
}
