//! Quantile-level conformance of the binomial samplers against the exact
//! distribution.
//!
//! The aggregate simulator's correctness rests entirely on
//! [`sample_binomial`] drawing from the true `Binomial(n, p)` law, across
//! the BINV/BTRS dispatch boundary at `n·min(p, 1−p) = 10` and through the
//! `p > 1/2` reflection. These tests compare empirical CDFs of the
//! samplers against the exact CDF from [`binomial_pmf_vec`] with a
//! Dvoretzky–Kiefer–Wolfowitz bound, pin the reflection identity draw for
//! draw, and bracket extreme quantiles so a tail-only bias (the class of
//! bug the BINV underflow was) cannot hide inside a loose mean test.

use bitdissem_poly::binomial::binomial_pmf_vec;
use bitdissem_sim::binomial::{binv, btrs, sample_binomial};
use bitdissem_sim::rng::{rng_from, splitmix64, SimRng};
use proptest::prelude::*;

/// Draws per empirical CDF.
const DRAWS: usize = 4000;

/// DKW: `P(sup |F_m − F| > eps) <= 2 exp(−2 m eps²)`, so at false-alarm
/// level `alpha` the bound is `eps = sqrt(ln(2/alpha) / (2m))`.
fn dkw_epsilon(m: usize, alpha: f64) -> f64 {
    ((2.0 / alpha).ln() / (2.0 * m as f64)).sqrt()
}

/// Exact CDF `F(k) = P(X <= k)` from the exact PMF.
fn exact_cdf(n: u64, p: f64) -> Vec<f64> {
    let mut cdf = binomial_pmf_vec(n, p);
    for k in 1..cdf.len() {
        cdf[k] += cdf[k - 1];
    }
    cdf
}

/// Empirical counts-per-value from `m` draws of `sampler`.
fn empirical_counts(n: u64, m: usize, mut sampler: impl FnMut() -> u64) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize + 1];
    for _ in 0..m {
        let k = sampler();
        assert!(k <= n, "sampler returned {k} > n = {n}");
        counts[k as usize] += 1;
    }
    counts
}

/// Sup-distance between the empirical CDF of `counts` and `cdf`.
fn ks_distance(counts: &[u64], cdf: &[f64]) -> f64 {
    let m: u64 = counts.iter().sum();
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (k, &c) in counts.iter().enumerate() {
        acc += c;
        let d = (acc as f64 / m as f64 - cdf[k]).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}

/// The level-`q` quantile of the exact CDF (smallest `k` with `F(k) >= q`).
fn exact_quantile(cdf: &[f64], q: f64) -> usize {
    cdf.iter().position(|&f| f >= q).unwrap_or(cdf.len() - 1)
}

/// The level-`q` quantile of the empirical counts.
fn empirical_quantile(counts: &[u64], q: f64) -> usize {
    let m: u64 = counts.iter().sum();
    let mut acc = 0u64;
    for (k, &c) in counts.iter().enumerate() {
        acc += c;
        if acc as f64 / m as f64 >= q {
            return k;
        }
    }
    counts.len() - 1
}

/// Gates `sampler` against the exact law: DKW bound on the full CDF plus
/// quantile bracketing at tail levels. `alpha` is the per-call false-alarm
/// probability of the DKW gate.
fn assert_matches_exact(
    what: &str,
    n: u64,
    p: f64,
    m: usize,
    alpha: f64,
    sampler: impl FnMut() -> u64,
) {
    let cdf = exact_cdf(n, p);
    let counts = empirical_counts(n, m, sampler);
    let d = ks_distance(&counts, &cdf);
    let eps = dkw_epsilon(m, alpha);
    assert!(
        d <= eps,
        "{what}: n={n} p={p}: empirical CDF is {d:.4} from exact (DKW bound {eps:.4})"
    );
    // Quantile bracketing: DKW distance eps means the empirical level-q
    // quantile must lie between the exact quantiles at q−eps and q+eps.
    // Checking the tails directly catches a localized tail bias even when
    // the sup-distance gate above is what formally implies it.
    for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
        let lo = exact_quantile(&cdf, (q - eps).max(0.0));
        let hi = exact_quantile(&cdf, (q + eps).min(1.0));
        let emp = empirical_quantile(&counts, q);
        assert!(
            (lo..=hi).contains(&emp),
            "{what}: n={n} p={p}: empirical {q}-quantile {emp} outside exact bracket [{lo}, {hi}]"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// [`sample_binomial`] agrees with the exact CDF for `(n, p)` chosen so
    /// `n·min(p, 1−p)` sweeps across the BINV/BTRS dispatch boundary at 10,
    /// on both sides of the `p > 1/2` reflection.
    #[test]
    fn dispatch_boundary_matches_exact_cdf(
        n in 40u64..400,
        mean in 4.0f64..25.0,
        reflect in 0u64..2,
        seed in 0u64..u64::MAX,
    ) {
        let q = (mean / n as f64).min(0.5);
        let p = if reflect == 1 { 1.0 - q } else { q };
        let mut rng = rng_from(splitmix64(seed));
        // 24 cases × 6 gates each; alpha = 1e-6 keeps the whole suite's
        // false-alarm rate ~1e-4 while eps ≈ 0.043 still discriminates.
        assert_matches_exact(
            "sample_binomial",
            n,
            p,
            DRAWS,
            1e-6,
            || sample_binomial(&mut rng, n, p),
        );
    }

    /// BINV driven past its natural dispatch regime (`n·p` up to 25, where
    /// the pre-fix recurrence was still fine — the gate here is that the
    /// direct entry point stays exact wherever it is defined).
    #[test]
    fn binv_matches_exact_cdf(
        n in 40u64..400,
        mean in 2.0f64..25.0,
        seed in 0u64..u64::MAX,
    ) {
        let p = (mean / n as f64).min(0.5);
        let mut rng = rng_from(splitmix64(seed));
        assert_matches_exact("binv", n, p, DRAWS, 1e-6, || binv(&mut rng, n, p));
    }

    /// BTRS across its whole precondition region (`p <= 1/2`, `n·p >= 10`).
    #[test]
    fn btrs_matches_exact_cdf(
        n in 40u64..400,
        mean in 10.0f64..40.0,
        seed in 0u64..u64::MAX,
    ) {
        let p = (mean / n as f64).min(0.5);
        prop_assume!(n as f64 * p >= 10.0);
        let mut rng = rng_from(splitmix64(seed));
        assert_matches_exact("btrs", n, p, DRAWS, 1e-6, || btrs(&mut rng, n, p));
    }

    /// Regression pin for the `p > 1/2` reflection: a draw at `p` must be
    /// exactly `n` minus the underlying sampler's draw at `1 − p` under the
    /// same RNG stream, in both the BINV regime and the BTRS regime.
    #[test]
    fn reflection_is_exact_draw_for_draw(seed in 0u64..u64::MAX) {
        // n·(1−p) = 5 < 10: reflected draws go through BINV.
        let mut a = rng_from(seed);
        let mut b = rng_from(seed);
        prop_assert_eq!(sample_binomial(&mut a, 50, 0.9), 50 - binv(&mut b, 50, 0.1));
        // n·(1−p) = 40 >= 10: reflected draws go through BTRS.
        let mut a = rng_from(seed);
        let mut b = rng_from(seed);
        prop_assert_eq!(sample_binomial(&mut a, 400, 0.9), 400 - btrs(&mut b, 400, 0.1));
    }
}

/// The exact dispatch edge: `n·p` a hair on each side of 10 must route to
/// different samplers yet draw from the same law. This is a fixed-seed
/// smoke pin (the proptest above covers the law; this guards the routing).
#[test]
fn dispatch_edge_routes_both_samplers_to_the_same_law() {
    let n = 1000u64;
    let below = 9.99 / n as f64; // BINV side
    let above = 10.01 / n as f64; // BTRS side
    for (p, name) in [(below, "below"), (above, "above")] {
        let mut rng = rng_from(7);
        let cdf = exact_cdf(n, p);
        let counts = empirical_counts(n, DRAWS, || sample_binomial(&mut rng, n, p));
        let d = ks_distance(&counts, &cdf);
        let eps = dkw_epsilon(DRAWS, 1e-6);
        assert!(d <= eps, "{name} the edge: D = {d:.4} > {eps:.4}");
    }
}

/// Deep-tail pin in the underflow regime the BINV fix addressed: with
/// `n = 10^8, p = 10^-6` the old recurrence underflowed `q^n` to zero and
/// returned `k = n`; the log-space restart must put every draw near
/// `n·p = 100`.
#[test]
fn binv_underflow_regime_draws_stay_near_the_mean() {
    let n = 100_000_000u64;
    let p = 1e-6;
    let mut rng: SimRng = rng_from(11);
    for _ in 0..50 {
        let k = binv(&mut rng, n, p);
        // Binomial(1e8, 1e-6) ≈ Poisson(100): 50 draws stay within ±6σ.
        assert!((40..=160).contains(&k), "draw {k} implausible for mean 100");
    }
}
