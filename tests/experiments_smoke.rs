//! Every registered experiment runs at smoke scale and passes its own
//! directional checks — the end-to-end gate for the whole reproduction.

use bitdissem_experiments::{registry, RunConfig};

#[test]
fn every_experiment_passes_its_directional_checks_at_smoke_scale() {
    let cfg = RunConfig::smoke(20_240_613);
    let mut failures = Vec::new();
    for entry in registry::all() {
        let report = (entry.run)(&cfg);
        assert_eq!(report.id, entry.id);
        assert!(!report.tables.is_empty(), "{}: no tables produced", entry.id);
        assert!(report.tables.iter().all(|(_, t)| !t.is_empty()), "{}: empty table", entry.id);
        if !report.pass {
            failures.push(format!("{}\n{}", entry.id, report.render()));
        }
    }
    assert!(failures.is_empty(), "failing experiments:\n{}", failures.join("\n---\n"));
}

#[test]
fn reports_render_and_serialize() {
    let cfg = RunConfig::smoke(7);
    let report = registry::run("e5", &cfg).expect("known id");
    let text = report.render();
    assert!(text.contains("E5"));
    assert!(text.contains("verdict"));
    // Reports are serde-serializable for downstream tooling (compile-time
    // check that the bound holds).
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    assert_serialize(&report);
}
