//! Every registered experiment runs at smoke scale and passes its own
//! directional checks — the end-to-end gate for the whole reproduction.
//! The run is traced through a `MemorySink`, so this also gates the
//! observability layer: every experiment must produce a well-formed
//! bracketed event stream and a manifest.

use std::sync::Arc;

use bitdissem_experiments::{registry, RunConfig};
use bitdissem_obs::{Event, MemorySink, Obs};

#[test]
fn every_experiment_passes_its_directional_checks_at_smoke_scale() {
    let cfg = RunConfig::smoke(20_240_613);
    let mut failures = Vec::new();
    for entry in registry::all() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::none().with_sink(Arc::clone(&sink) as _).with_metrics();
        let report = registry::run_observed(entry.id, &cfg, &obs).expect("registered id");
        assert_eq!(report.id, entry.id);
        assert!(!report.tables.is_empty(), "{}: no tables produced", entry.id);
        assert!(report.tables.iter().all(|(_, t)| !t.is_empty()), "{}: empty table", entry.id);

        // Observability invariants: started first, finished + manifest
        // last, and the manifest mirrors the run configuration.
        let events = sink.events();
        assert!(
            matches!(&events[0], Event::ExperimentStarted { id, .. } if *id == entry.id),
            "{}: first event is {:?}",
            entry.id,
            events.first()
        );
        assert!(
            matches!(&events[events.len() - 1], Event::Manifest(_)),
            "{}: trace must end with the manifest",
            entry.id
        );
        assert!(
            matches!(&events[events.len() - 2], Event::ExperimentFinished { id, .. } if *id == entry.id),
            "{}: penultimate event is {:?}",
            entry.id,
            events.get(events.len() - 2)
        );
        let manifest = report.manifest.as_ref().expect("manifest attached");
        assert_eq!(manifest.experiment_id, entry.id);
        assert_eq!(manifest.seed, cfg.seed);
        assert_eq!(manifest.scale, "smoke");
        // Every experiment times itself under its own id.
        assert!(
            obs.metrics().phases().iter().any(|(name, _)| name == entry.id),
            "{}: missing phase scope",
            entry.id
        );

        if !report.pass {
            failures.push(format!("{}\n{}", entry.id, report.render()));
        }
    }
    assert!(failures.is_empty(), "failing experiments:\n{}", failures.join("\n---\n"));
}

#[test]
fn reports_render_and_serialize() {
    let cfg = RunConfig::smoke(7);
    let report = registry::run("e5", &cfg).expect("known id");
    let text = report.render();
    assert!(text.contains("E5"));
    assert!(text.contains("verdict"));
    // Reports are serde-serializable for downstream tooling (compile-time
    // check that the bound holds).
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    assert_serialize(&report);
}

#[test]
fn observed_and_unobserved_registry_runs_agree() {
    // Tracing must never perturb the simulation: same seed, same report
    // (up to the wall-clock fields in the manifest).
    let cfg = RunConfig::smoke(99);
    let mut plain = registry::run("e2", &cfg).expect("known id");
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::none().with_sink(sink).with_metrics();
    let mut traced = registry::run_observed("e2", &cfg, &obs).expect("known id");
    plain.manifest = None;
    traced.manifest = None;
    assert_eq!(plain, traced);
}
