//! Columnar trace-store integration: the binary format must be a
//! lossless, damage-bounded carrier for real experiment event streams.
//!
//! Three contracts are gated here:
//!
//! 1. **Convert equality** — recording a real experiment through a
//!    `MemorySink` and round-tripping the stream through the columnar
//!    encoder (and through JSONL) reproduces the exact event sequence,
//!    and both formats analyze to byte-identical reports.
//! 2. **Truncation recovery (proptest)** — cutting a columnar trace at a
//!    *random* byte offset recovers a clean prefix of whole blocks or
//!    flags a torn tail; never garbage, never a panic. (The obs crate
//!    unit tests cut one fixed stream at every offset; here the stream
//!    itself is randomized.)
//! 3. **Fault-injected writers** — a columnar sink over a `FaultyWriter`
//!    (short writes, crash mid-block) leaves a file the reader recovers
//!    a prefix from and `repair` truncates back to a clean trace.

use std::sync::{Arc, Mutex};

use bitdissem_experiments::trace::{analyze, TraceAccumulator};
use bitdissem_experiments::{registry, RunConfig};
use bitdissem_obs::columnar::{repair, ColumnarReader, ColumnarSink, MAGIC};
use bitdissem_obs::{Event, EventSink, FaultyWriter, MemorySink, Obs, ReplicationOutcome};
use proptest::prelude::*;

/// Encodes an event slice through a `ColumnarSink` into memory.
fn encode_columnar(events: &[Event]) -> Vec<u8> {
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let shared = Shared::default();
    let sink = ColumnarSink::from_writer(Box::new(shared.clone())).unwrap();
    for ev in events {
        sink.emit(ev);
    }
    drop(sink);
    let bytes = shared.0.lock().unwrap().clone();
    bytes
}

#[test]
fn real_experiment_stream_round_trips_through_both_formats() {
    // Record a real run — batch headers, round trajectories, results,
    // manifest — through the in-memory sink.
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::none().with_sink(Arc::clone(&sink) as _);
    let cfg = RunConfig::smoke(20_260_808);
    registry::run_observed("e2", &cfg, &obs).expect("registered id");
    let stream = sink.events();
    assert!(stream.len() > 100, "a smoke run produces a substantial stream");

    // Columnar round trip: exact event equality, in order.
    let reader = ColumnarReader::from_bytes(encode_columnar(&stream)).unwrap();
    assert!(!reader.torn_tail());
    let columnar_back: Vec<Event> = reader.events().collect();
    assert_eq!(columnar_back, stream);

    // JSONL round trip of the same stream.
    let jsonl_back: Vec<Event> =
        stream.iter().map(|ev| Event::from_json(&ev.to_json()).unwrap()).collect();
    assert_eq!(jsonl_back, stream);

    // Both ingestion paths produce byte-identical analytics: the
    // event-push path (JSONL) and the zero-copy block path (columnar).
    let via_events = analyze(&stream, 0);
    let mut acc = TraceAccumulator::new();
    for block in reader.blocks() {
        acc.ingest_block(&block);
    }
    let via_blocks = acc.finish(0);
    assert_eq!(via_events.render(), via_blocks.render());
    assert_eq!(via_events.has_violations(), via_blocks.has_violations());
}

#[test]
fn faulty_writer_tear_is_recovered_and_repaired() {
    let dir =
        std::env::temp_dir().join(format!("bitdissem_trace_store_fault_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faulty.bct");

    // A sink whose writer accepts at most 7 bytes per call and dies
    // after 600 bytes — short writes plus a crash mid-block.
    let file = std::fs::File::create(&path).unwrap();
    let faulty = FaultyWriter::new(file).with_short_writes(7).with_tear_after(600);
    let sink = ColumnarSink::from_writer(Box::new(faulty)).unwrap();
    for r in 0..2000u64 {
        sink.emit(&Event::RoundCompleted {
            rep: r / 100,
            round: r % 100,
            ones: r,
            source_opinion: 1,
        });
        if r % 100 == 99 {
            sink.emit(&Event::ReplicationFinished {
                rep: r / 100,
                outcome: ReplicationOutcome::Converged,
                rounds: 100,
                elapsed_us: r,
            });
            sink.flush();
        }
    }
    drop(sink);

    // NOTE: `ColumnarSink` swallows write errors by contract (like
    // `JsonlSink`), so the file now ends wherever the writer died.
    let reader = ColumnarReader::open(&path).unwrap();
    assert!(reader.torn_tail(), "the injected crash must leave a torn tail");
    let recovered = reader.event_count();

    let stats = repair(&path).unwrap();
    assert_eq!(stats.events_kept, recovered);
    assert!(stats.bytes_truncated > 0);
    let clean = ColumnarReader::open(&path).unwrap();
    assert!(!clean.torn_tail(), "repair must leave a clean trace");
    assert_eq!(clean.event_count(), recovered);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Strategy over arbitrary events mixing every hot variant plus batch
/// headers (with variable-width `g`-tables) and string-bearing
/// experiment brackets. The vendored proptest shim has no `prop_oneof`,
/// so a discriminant plus raw fields are mapped into the variant; the
/// weights skew toward the hot `RoundCompleted` shape. Strings come
/// from small fixed pools so the dictionary sees both hits and misses.
fn event_strategy() -> impl Strategy<Value = Event> {
    const IDS: [&str; 4] = ["e1", "e2", "e7", "x"];
    const KINDS: [&str; 3] = ["conv", "seqconv", "cross"];
    const NAMES: [&str; 4] = ["voter", "minority", "two-choices", ""];
    (0usize..10, proptest::collection::vec(0u64..1_000_000, 6), 0usize..4, 1usize..6).prop_map(
        |(disc, f, s, glen)| {
            let bit = (f[0] % 2) as u8;
            let gs = |off: usize| -> Vec<f64> {
                (0..glen).map(|i| (f[(off + i) % 6] % 1025) as f64 / 1024.0).collect()
            };
            match disc {
                0..=4 => Event::RoundCompleted {
                    rep: f[1],
                    round: f[2],
                    ones: f[3],
                    source_opinion: bit,
                },
                5 | 6 => Event::ReplicationFinished {
                    rep: f[1],
                    outcome: if bit == 1 {
                        ReplicationOutcome::Converged
                    } else {
                        ReplicationOutcome::TimedOut
                    },
                    rounds: f[2],
                    elapsed_us: f[3],
                },
                7 => Event::ConsensusExited { rep: f[1], entered: f[2], exited: f[3] },
                8 => Event::ExperimentStarted {
                    id: IDS[s].to_string(),
                    title: NAMES[s].to_string(),
                    seed: f[1],
                    scale: KINDS[s % 3].to_string(),
                },
                _ => Event::BatchStarted {
                    kind: KINDS[s % 3].to_string(),
                    protocol: NAMES[s].to_string(),
                    ell: 1 + f[1] % 64,
                    n: 1 + f[2] % 4096,
                    x0: f[3],
                    source_opinion: bit,
                    reps: f[4],
                    budget: f[5],
                    seed: f[0],
                    g0: gs(0),
                    g1: gs(3),
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting a columnar trace of a random event stream at a random
    /// byte offset recovers a clean prefix of the stream — all complete
    /// blocks — or nothing, and mid-block cuts are flagged torn.
    #[test]
    fn random_truncation_recovers_a_clean_prefix(
        events in proptest::collection::vec(event_strategy(), 1..120),
        cut_frac in 0.0f64..=1.0,
    ) {
        let full = encode_columnar(&events);
        prop_assert!(full.len() > MAGIC.len());
        let span = full.len() - MAGIC.len();
        let cut = MAGIC.len() + ((span as f64) * cut_frac) as usize;
        let cut = cut.min(full.len());

        let reader = ColumnarReader::from_bytes(full[..cut].to_vec()).unwrap();
        let recovered: Vec<Event> = reader.events().collect();
        prop_assert!(recovered.len() <= events.len());
        prop_assert_eq!(&recovered[..], &events[..recovered.len()]);
        if !reader.torn_tail() && cut == full.len() {
            prop_assert_eq!(recovered.len(), events.len());
        }
        // Losing events silently (no torn flag, short of the full file)
        // is the one forbidden outcome.
        if recovered.len() < events.len() && cut == full.len() {
            prop_assert!(false, "full file must recover everything");
        }
        if !reader.torn_tail() {
            // An untorn read means the cut landed on a block boundary:
            // re-encoding the recovered prefix must reproduce the bytes.
            let reencoded = encode_columnar(&recovered);
            prop_assert_eq!(&full[..cut], &reencoded[..]);
        }
    }

    /// The columnar encoding is canonical for a given stream: encode →
    /// decode → encode is a fixed point.
    #[test]
    fn encode_decode_encode_is_a_fixed_point(
        events in proptest::collection::vec(event_strategy(), 0..80),
    ) {
        let first = encode_columnar(&events);
        let reader = ColumnarReader::from_bytes(first.clone()).unwrap();
        let decoded: Vec<Event> = reader.events().collect();
        prop_assert_eq!(&decoded, &events);
        let second = encode_columnar(&decoded);
        prop_assert_eq!(first, second);
    }
}
