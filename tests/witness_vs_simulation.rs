//! End-to-end: the Theorem 12 witness construction actually produces slow
//! instances for every constant-sample-size dynamics, and the predicted
//! structure (case, drift direction, thresholds) matches what the simulator
//! observes.

use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, WitnessCase};
use bitdissem_core::dynamics::{Minority, PowerVoter, TwoChoices, Voter};
use bitdissem_core::Protocol;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;

fn crossing_times<P: Protocol + Sync>(
    protocol: &P,
    n: u64,
    reps: usize,
    budget: u64,
    seed: u64,
) -> (LowerBoundWitness, Vec<Option<u64>>) {
    let witness = LowerBoundWitness::construct(protocol, n).expect("valid");
    let times = (0..reps)
        .map(|rep| {
            let mut rng = rng_from(replication_seed(seed, rep as u64));
            let mut sim = AggregateSim::new(protocol, witness.start()).expect("valid");
            for t in 0..budget {
                if witness.crossed(sim.configuration().ones()) {
                    return Some(t);
                }
                sim.step_round(&mut rng);
            }
            None
        })
        .collect();
    (witness, times)
}

#[test]
fn drift_protocols_never_cross_within_many_n_rounds() {
    let n = 512;
    let budget = 30 * n;
    let reps = 8;
    let protocols: Vec<Box<dyn Protocol + Send + Sync>> = vec![
        Box::new(Minority::new(3).unwrap()),
        Box::new(Minority::new(5).unwrap()),
        Box::new(TwoChoices::new()),
        Box::new(PowerVoter::new(3, 2.0).unwrap()),
        Box::new(PowerVoter::new(3, 0.5).unwrap()),
    ];
    for protocol in &protocols {
        let (witness, times) = crossing_times(protocol, n, reps, budget, 0xE1);
        assert_ne!(witness.case(), WitnessCase::VoterLike, "{}", protocol.name());
        let crossed = times.iter().filter(|t| t.is_some()).count();
        assert!(
            crossed == 0,
            "{}: {crossed}/{reps} runs crossed the threshold within {budget} rounds",
            protocol.name()
        );
    }
}

#[test]
fn voter_crossing_grows_with_n() {
    // Voter-like witnesses cross by diffusion in Θ(n) rounds: medians at
    // 4x the population size should be clearly larger.
    let reps = 31;
    let budget = |n: u64| 100 * n;
    let median = |mut ts: Vec<u64>| -> u64 {
        ts.sort_unstable();
        ts[ts.len() / 2]
    };
    let voter = Voter::new(1).unwrap();
    let (w_small, t_small) = crossing_times(&voter, 128, reps, budget(128), 0xE2);
    let (w_big, t_big) = crossing_times(&voter, 2048, reps, budget(2048), 0xE3);
    assert_eq!(w_small.case(), WitnessCase::VoterLike);
    assert_eq!(w_big.case(), WitnessCase::VoterLike);
    let m_small = median(t_small.into_iter().map(|t| t.unwrap_or(budget(128))).collect());
    let m_big = median(t_big.into_iter().map(|t| t.unwrap_or(budget(2048))).collect());
    assert!(m_big >= 4 * m_small.max(1), "crossing medians: n=128 -> {m_small}, n=2048 -> {m_big}");
}

#[test]
fn witness_drift_direction_matches_observed_motion() {
    // In Case 1 the chain must drift down from the start; in Case 2 up.
    let n = 2048;
    let cases = [
        (
            Box::new(Minority::new(3).unwrap()) as Box<dyn Protocol + Send + Sync>,
            WitnessCase::NegativeDrift,
        ),
        (Box::new(PowerVoter::new(3, 0.5).unwrap()), WitnessCase::PositiveDrift),
    ];
    for (protocol, expect_case) in cases {
        let witness = LowerBoundWitness::construct(&protocol, n).unwrap();
        assert_eq!(witness.case(), expect_case, "{}", protocol.name());
        let mut sim = AggregateSim::new(&protocol, witness.start()).unwrap();
        let mut rng = rng_from(0xD21F7);
        let x0 = sim.configuration().ones();
        for _ in 0..20 {
            sim.step_round(&mut rng);
        }
        let x20 = sim.configuration().ones();
        match expect_case {
            WitnessCase::NegativeDrift => {
                assert!(x20 < x0, "{}: expected downward motion ({x0} -> {x20})", protocol.name());
            }
            WitnessCase::PositiveDrift => {
                assert!(x20 > x0, "{}: expected upward motion ({x0} -> {x20})", protocol.name());
            }
            WitnessCase::VoterLike => unreachable!(),
        }
    }
}

#[test]
fn witness_interval_sign_matches_bias_polynomial() {
    for protocol in [
        Box::new(Minority::new(3).unwrap()) as Box<dyn Protocol + Send + Sync>,
        Box::new(Minority::new(7).unwrap()),
        Box::new(TwoChoices::new()),
    ] {
        let n = 1024;
        let f = BiasPolynomial::build(&protocol, n).unwrap();
        let witness = LowerBoundWitness::from_bias(&f);
        let (lo, hi) = witness.interval();
        let mid = 0.5 * (lo + hi);
        match witness.case() {
            WitnessCase::NegativeDrift => assert!(f.eval(mid) < 0.0, "{}", protocol.name()),
            WitnessCase::PositiveDrift => assert!(f.eval(mid) > 0.0, "{}", protocol.name()),
            WitnessCase::VoterLike => assert!(f.is_identically_zero()),
        }
    }
}
