//! Live telemetry integration: sharded metric cells under concurrent
//! writers must merge into internally consistent snapshots, and the
//! columnar telemetry series must share the trace store's
//! crash-recovery contract.
//!
//! Two contracts are gated here:
//!
//! 1. **Torn-free snapshots (proptest)** — concurrent stripe writers
//!    racing a snapshotter: every merged histogram's count equals the
//!    sum of its bins, per-bin counts and counter totals are monotone
//!    across successive snapshots, and the final totals equal the sum
//!    of per-worker contributions exactly.
//! 2. **Crash mid-snapshot** — a `ColumnarTelemetryExporter` over a
//!    `FaultyWriter` that dies mid-block leaves a file the reader
//!    recovers a whole-snapshot prefix from and `repair()` truncates
//!    back to a clean trace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bitdissem_obs::columnar::{repair, Block, ColumnarReader, ColumnarSink};
use bitdissem_obs::telemetry::{register_thread_slot, AtomicHistogram, ColumnarTelemetryExporter};
use bitdissem_obs::{Counter, TelemetryExporter, TelemetrySnapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn racing_snapshots_are_never_torn(
        writers in 2usize..6,
        adds_per_writer in 1u64..2_000,
    ) {
        let counter = Arc::new(Counter::new());
        let hist = Arc::new(AtomicHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));

        // The snapshotter races the writers and checks the merge
        // invariants on every pass: a derived count that always equals
        // the bin sum (no torn rows), and per-location monotonicity
        // (relaxed loads of a single atomic are coherent, so a later
        // snapshot can never read an older value).
        let snap_counter = Arc::clone(&counter);
        let snap_hist = Arc::clone(&hist);
        let snap_stop = Arc::clone(&stop);
        let snapshotter = std::thread::spawn(move || {
            let mut last_total = 0u64;
            let mut last_bins: Vec<u64> = Vec::new();
            let mut snaps = 0u64;
            while !snap_stop.load(Ordering::Relaxed) {
                let total = snap_counter.get();
                assert!(total >= last_total, "counter total went backwards");
                last_total = total;
                let h = snap_hist.snapshot();
                let mut bins = vec![h.underflow()];
                bins.extend_from_slice(h.bin_counts());
                bins.push(h.overflow());
                assert_eq!(
                    h.count(),
                    bins.iter().sum::<u64>(),
                    "torn histogram: count disagrees with its bin sum"
                );
                if !last_bins.is_empty() {
                    for (now, then) in bins.iter().zip(&last_bins) {
                        assert!(now >= then, "a histogram bin went backwards");
                    }
                }
                last_bins = bins;
                snaps += 1;
            }
            snaps
        });

        let mut joins = Vec::new();
        for w in 0..writers {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            joins.push(std::thread::spawn(move || {
                register_thread_slot(w);
                for i in 0..adds_per_writer {
                    counter.add(1);
                    // Samples spread over the underflow bin, the
                    // geometric range, and a shared hot bin.
                    hist.record(50 + (i % 64) * 1_000_000);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let snaps = snapshotter.join().unwrap();
        prop_assert!(snaps > 0, "the snapshotter must have raced at least once");

        // Final totals equal the sum of per-worker contributions.
        let expected = writers as u64 * adds_per_writer;
        prop_assert_eq!(counter.get(), expected);
        prop_assert_eq!(hist.snapshot().count(), expected);
    }
}

/// A snapshot with enough rows (8 counters + 1 gauge) that a block tear
/// lands strictly inside one snapshot's payload.
fn sample_snapshot(version: u64) -> TelemetrySnapshot {
    TelemetrySnapshot {
        version,
        unix_ms: 0,
        elapsed_us: version * 1_000,
        counters: (0..8).map(|i| (format!("c{i}"), version * 10 + i)).collect(),
        rates: Vec::new(),
        gauges: vec![("g".to_string(), version)],
        spans: Vec::new(),
        phases: Vec::new(),
        progress: None,
    }
}

/// Rows per [`sample_snapshot`]: its counters plus its gauge.
const ROWS_PER_SNAPSHOT: usize = 9;

fn export_snapshots(exporter: &mut ColumnarTelemetryExporter, n: u64) {
    for v in 1..=n {
        exporter.export(&sample_snapshot(v));
    }
    exporter.finish();
}

#[test]
fn crash_mid_snapshot_repairs_to_a_clean_prefix() {
    let dir =
        std::env::temp_dir().join(format!("bitdissem_telemetry_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("telemetry.bct");

    // Measure how many bytes three healthy snapshots need, then replay
    // the identical stream through a writer that dies a few bytes short
    // of the end — a crash mid-way through the last snapshot's block.
    let healthy = {
        let sink = ColumnarSink::create(&path).unwrap();
        let mut exporter = ColumnarTelemetryExporter::with_sink(Box::new(sink));
        export_snapshots(&mut exporter, 3);
        drop(exporter);
        usize::try_from(std::fs::metadata(&path).unwrap().len()).unwrap()
    };

    let file = std::fs::File::create(&path).unwrap();
    let writer = bitdissem_obs::FaultyWriter::new(file).with_tear_after(healthy - 7);
    let sink = ColumnarSink::from_writer(Box::new(writer)).unwrap();
    let mut exporter = ColumnarTelemetryExporter::with_sink(Box::new(sink));
    export_snapshots(&mut exporter, 3);
    drop(exporter);

    // The reader flags the tear and yields the complete snapshots.
    let telemetry_rows = |reader: &ColumnarReader| {
        let mut rows = 0usize;
        for block in reader.blocks() {
            if let Block::TelemetrySample(cols) = block {
                rows += cols.len;
            }
        }
        rows
    };
    let reader = ColumnarReader::open(&path).unwrap();
    assert!(reader.torn_tail(), "the injected crash must be detected");
    let rows = telemetry_rows(&reader);
    assert!(
        (2 * ROWS_PER_SNAPSHOT..3 * ROWS_PER_SNAPSHOT).contains(&rows),
        "whole snapshots survive, the torn one is dropped: got {rows} rows"
    );

    // repair() truncates the torn tail; the file is then a clean trace.
    let stats = repair(&path).unwrap();
    assert!(stats.bytes_truncated > 0, "{stats:?}");
    let reader = ColumnarReader::open(&path).unwrap();
    assert!(!reader.torn_tail(), "repair must leave a clean trace");
    assert_eq!(telemetry_rows(&reader), rows, "repair must keep the recovered prefix");

    let _ = std::fs::remove_dir_all(&dir);
}
