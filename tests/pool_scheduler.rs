//! Cross-crate guarantees of the persistent worker pool and the sweep
//! checkpointing built on top of it:
//!
//! 1. the pool-based `replicate` is **bit-identical** to the scoped-thread
//!    spawn-per-call reference (`replicate_spawn`) for arbitrary batch
//!    shapes and thread counts (property-based), and
//! 2. a checkpointed sweep that is interrupted and resumed produces exactly
//!    the results of an uninterrupted run, replication for replication.

use std::sync::Arc;

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::{Configuration, Opinion};
use bitdissem_experiments::workload::measure_convergence_observed;
use bitdissem_obs::{CheckpointLog, Obs};
use bitdissem_pool::Pool;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::run::run_to_consensus;
use bitdissem_sim::runner::{replicate, replicate_spawn};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The determinism contract, stated as a property: for any batch size,
    /// any thread count, and any base seed, the pooled engine returns the
    /// same result vector as the pre-pool spawn engine with any *other*
    /// thread count.
    #[test]
    fn pool_replicate_equals_spawn_reference(
        reps in 1usize..48,
        pool_threads in 1usize..9,
        spawn_threads in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let pooled = replicate(reps, seed, Some(pool_threads), |mut rng, rep| {
            (rep, rng.random::<u64>())
        });
        let spawned = replicate_spawn(reps, seed, Some(spawn_threads), |mut rng, rep| {
            (rep, rng.random::<u64>())
        });
        prop_assert_eq!(pooled, spawned);
    }

    /// Same property on a real simulation workload: convergence outcomes of
    /// a Voter batch are scheduling-independent.
    #[test]
    fn pool_simulation_outcomes_are_scheduling_independent(
        threads in 1usize..6,
        seed in 0u64..1000,
    ) {
        let voter = Voter::new(1).unwrap();
        let start = Configuration::all_wrong(16, Opinion::One);
        let run = |t: usize| {
            replicate(6, seed, Some(t), |mut rng, _| {
                let mut sim = AggregateSim::new(&voter, start).unwrap();
                run_to_consensus(&mut sim, &mut rng, 100_000).rounds_censored()
            })
        };
        prop_assert_eq!(run(threads), run(1));
    }
}

/// One pool instance survives an entire "sweep": many batches of varying
/// shapes, all correct, with workers reused throughout.
#[test]
fn one_pool_serves_many_sweep_points() {
    let pool = Pool::new(3);
    for point in 1..20usize {
        let total = std::sync::atomic::AtomicUsize::new(0);
        pool.run_batch(point * 3, 4, &|i| {
            total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
        });
        let k = point * 3;
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), k * (k - 1) / 2);
    }
    assert_eq!(pool.batches_run(), 19);
}

/// Checkpoint/resume round trip through a real file: an interrupted sweep
/// (only a prefix of replications persisted) resumed from disk yields the
/// uninterrupted batch bit for bit, with the cached prefix counted as hits.
#[test]
fn interrupted_sweep_resumes_bit_identically_from_disk() {
    let minority = Minority::new(3).unwrap();
    let start = Configuration::new(32, Opinion::One, 24).unwrap();
    let reps = 12;
    let budget = 200_000;
    let seed = 99;

    let uninterrupted =
        measure_convergence_observed(&Obs::none(), &minority, start, reps, budget, seed, Some(3));

    let path = std::env::temp_dir()
        .join(format!("bitdissem_pool_sched_resume_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // "Interrupted" run: only the first 5 replications complete and are
    // checkpointed before the process dies (log dropped = file closed).
    {
        let log = Arc::new(CheckpointLog::open(&path).unwrap());
        let obs = Obs::none().with_checkpoint(log);
        let partial =
            measure_convergence_observed(&obs, &minority, start, 5, budget, seed, Some(2));
        assert_eq!(partial.outcomes(), &uninterrupted.outcomes()[..5]);
    }

    // Resumed run in a "new process": reload the log from disk, run the
    // full batch with a different thread count.
    let log = Arc::new(CheckpointLog::open(&path).unwrap());
    assert_eq!(log.len(), 5, "the interrupted run persisted its prefix");
    let obs = Obs::none().with_metrics().with_checkpoint(Arc::clone(&log));
    let resumed = measure_convergence_observed(&obs, &minority, start, reps, budget, seed, Some(4));

    assert_eq!(resumed.outcomes(), uninterrupted.outcomes());
    assert_eq!(
        obs.metrics().checkpoint_hits.load(std::sync::atomic::Ordering::Relaxed),
        5,
        "exactly the persisted prefix is served from the log"
    );
    assert_eq!(log.len(), reps, "the resumed run persisted the remainder");
    let _ = std::fs::remove_file(&path);
}

/// Checkpoint namespaces keep two experiments' identical batch parameters
/// from colliding in one shared log.
#[test]
fn checkpoint_namespaces_isolate_experiments() {
    let voter = Voter::new(1).unwrap();
    let start = Configuration::all_wrong(16, Opinion::One);
    let log = Arc::new(CheckpointLog::in_memory());

    let obs_a = Obs::none().with_checkpoint(Arc::clone(&log)).with_checkpoint_ns("e2");
    let a = measure_convergence_observed(&obs_a, &voter, start, 4, 100_000, 1, Some(2));
    let after_a = log.len();

    let obs_b = Obs::none().with_checkpoint(Arc::clone(&log)).with_checkpoint_ns("e11");
    let b = measure_convergence_observed(&obs_b, &voter, start, 4, 100_000, 1, Some(2));

    assert_eq!(a.outcomes(), b.outcomes(), "same parameters, same outcomes");
    assert_eq!(log.len(), 2 * after_a, "distinct namespaces produce distinct keys");
}
