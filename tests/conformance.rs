//! End-to-end conformance harness exercise: a hand-built tiny differential
//! matrix passes its KS gates, every fault scenario resumes bit-identically,
//! and the report survives a disk round trip — the same path `bitdissem
//! conform` drives, without the CLI in the way.

use bitdissem_conformance::{
    run_differential, run_fault_scenarios, Cell, ConformConfig, ConformReport, ConformScale,
    ProtocolKind, StartKind, CONFORM_SCHEMA_VERSION,
};

/// A matrix small enough for CI's debug profile: one voter cell and one
/// minority cell at a single population size, parallel-law checks only at
/// two checkpoint rounds.
fn tiny_config() -> ConformConfig {
    ConformConfig {
        scale: ConformScale::Smoke,
        cells: vec![
            Cell { kind: ProtocolKind::Voter, ell: 1 },
            Cell { kind: ProtocolKind::Minority, ell: 3 },
        ],
        ns: vec![16],
        starts: vec![StartKind::AllWrong],
        reps: 60,
        budget: 200,
        checkpoints: vec![1, 2],
        act_checkpoint_mults: vec![1, 2],
        drift_n: 512,
        drift_reps: 6,
        drift_rounds: 6,
        alpha_budget: 1e-9,
        env_specs: vec!["flip@2".to_string()],
    }
}

#[test]
fn tiny_matrix_passes_and_reports_round_trip() {
    let cfg = tiny_config();
    let seed = 20_260_806;
    let checks = run_differential(&cfg, seed);
    assert_eq!(checks.len(), cfg.num_checks());
    for c in &checks {
        assert!(
            c.pass,
            "{}: D = {:.4} > critical {:.4} (sizes {:?})",
            c.name, c.statistic, c.critical, c.sizes
        );
        assert!(c.statistic.is_finite(), "{}: undefined statistic", c.name);
    }
    // Every equivalence family appears in the matrix.
    for needle in
        ["agent~aggregate", "aggregate~partial(n-1)", "sequential~partial(1)", "dual~forward"]
    {
        assert!(
            checks.iter().any(|c| c.name.contains(needle)),
            "no check exercises the '{needle}' equivalence"
        );
    }

    let dir = std::env::temp_dir().join(format!("conform_integration_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let faults = run_fault_scenarios(&dir.join("faults"), seed);
    assert_eq!(faults.len(), 5);
    for f in &faults {
        assert!(f.pass, "fault scenario {}: {}", f.scenario, f.detail);
    }

    let report = ConformReport {
        schema_version: CONFORM_SCHEMA_VERSION,
        label: "integration".to_string(),
        scale: cfg.scale.name().to_string(),
        seed,
        alpha_budget: cfg.alpha_budget,
        checks,
        faults,
    };
    assert!(report.pass());
    let path = report.save(&dir).unwrap();
    let loaded = ConformReport::load(&path).unwrap();
    assert_eq!(loaded, report);
    assert!(loaded.pass());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_rejects_genuinely_different_laws() {
    // The KS gate must be able to reject when laws genuinely differ, or a
    // green report means nothing: compare voter ℓ=1 consensus times against
    // minority ℓ=3 from the all-wrong start. Voter converges well inside
    // the budget; minority is attracted to the n/2 fixed point and censors
    // at it — nearly disjoint distributions at the conformance alpha.
    use bitdissem_conformance::backend::{sample_parallel, ParallelBackend};
    use bitdissem_core::dynamics::{Minority, Voter};
    use bitdissem_core::{Configuration, Opinion, ProtocolExt};
    use bitdissem_stats::compare::{ks_critical_value, ks_statistic};

    let n = 16u64;
    let reps = 200;
    let budget = 400;
    let start = Configuration::all_wrong(n, Opinion::One);
    let voter = Voter::new(1).unwrap().to_table(n).unwrap();
    let minority = Minority::new(3).unwrap().to_table(n).unwrap();
    let a = sample_parallel(ParallelBackend::Aggregate, &voter, start, reps, budget, &[], 1);
    let b = sample_parallel(ParallelBackend::Aggregate, &minority, start, reps, budget, &[], 2);
    let d = ks_statistic(&a.times, &b.times).expect("defined statistic");
    let crit = ks_critical_value(reps, reps, tiny_config().per_test_alpha());
    assert!(d > crit, "gate failed to separate voter from minority: D = {d:.4} <= {crit:.4}");
}
