//! The aggregate exact-chain simulator and the literal agent-level
//! simulator are distributionally identical (DESIGN.md decision §4.1).

use bitdissem_core::dynamics::{Minority, TwoChoices, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol};
use bitdissem_markov::AggregateChain;
use bitdissem_sim::agent::AgentSim;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;

fn one_round_samples<S, F>(reps: u64, seed: u64, make: F) -> Vec<u64>
where
    S: Simulator,
    F: Fn() -> S,
{
    (0..reps)
        .map(|rep| {
            let mut rng = rng_from(replication_seed(seed, rep));
            let mut sim = make();
            sim.step_round(&mut rng);
            sim.configuration().ones()
        })
        .collect()
}

fn mean_var(xs: &[u64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

fn check_protocol<P: Protocol + Copy>(protocol: P, n: u64, x0: u64, seed: u64) {
    let start = Configuration::new(n, Opinion::One, x0).unwrap();
    let chain = AggregateChain::build(&protocol, n, Opinion::One).unwrap();
    let exact_mean = chain.expected_next(x0);
    let row = chain.transition_row(x0);
    let exact_var: f64 =
        row.iter().enumerate().map(|(y, &p)| (y as f64 - exact_mean).powi(2) * p).sum();

    let reps = 30_000;
    let agg = one_round_samples(reps, seed, || AggregateSim::new(&protocol, start).unwrap());
    let agent = one_round_samples(reps, seed ^ 1, || AgentSim::new(&protocol, start).unwrap());

    let (am, av) = mean_var(&agg);
    let (gm, gv) = mean_var(&agent);
    let se = (exact_var / reps as f64).sqrt();
    assert!(
        (am - exact_mean).abs() < 5.0 * se + 0.05,
        "{}: aggregate mean {am} vs exact {exact_mean}",
        protocol.name()
    );
    assert!(
        (gm - exact_mean).abs() < 5.0 * se + 0.05,
        "{}: agent mean {gm} vs exact {exact_mean}",
        protocol.name()
    );
    assert!(
        (av - exact_var).abs() < 0.15 * exact_var + 0.5,
        "{}: aggregate var {av} vs exact {exact_var}",
        protocol.name()
    );
    assert!(
        (gv - exact_var).abs() < 0.15 * exact_var + 0.5,
        "{}: agent var {gv} vs exact {exact_var}",
        protocol.name()
    );
}

#[test]
fn minority_one_round_moments_match() {
    check_protocol(Minority::new(3).unwrap(), 60, 40, 0x11);
}

#[test]
fn voter_one_round_moments_match() {
    check_protocol(Voter::new(2).unwrap(), 60, 25, 0x12);
}

#[test]
fn own_dependent_protocol_one_round_moments_match() {
    // TwoChoices exercises the g0 != g1 path in both simulators.
    check_protocol(TwoChoices::new(), 60, 30, 0x13);
}

#[test]
fn multi_round_trajectories_have_matching_distribution_summary() {
    // After 10 rounds from the same start, the empirical mean of X_10 must
    // agree between the simulators (law equality at horizon 10).
    let protocol = Minority::new(3).unwrap();
    let n = 48;
    let start = Configuration::new(n, Opinion::One, 36).unwrap();
    let reps = 8000u64;
    let horizon = 10;
    let run = |agent: bool, seed: u64| -> f64 {
        let mut total = 0.0;
        for rep in 0..reps {
            let mut rng = rng_from(replication_seed(seed, rep));
            let x = if agent {
                let mut sim = AgentSim::new(&protocol, start).unwrap();
                for _ in 0..horizon {
                    sim.step_round(&mut rng);
                }
                sim.configuration().ones()
            } else {
                let mut sim = AggregateSim::new(&protocol, start).unwrap();
                for _ in 0..horizon {
                    sim.step_round(&mut rng);
                }
                sim.configuration().ones()
            };
            total += x as f64;
        }
        total / reps as f64
    };
    let agg = run(false, 0x21);
    let agent = run(true, 0x22);
    // X_10 has std ~ a few; means over 8000 reps have SE ~ 0.05.
    assert!((agg - agent).abs() < 0.5, "aggregate {agg} vs agent {agent}");
}
