//! Footnote 2 of the paper: with more than two opinions, under the
//! "may not adopt an unseen opinion" restriction, a binary initial
//! configuration reduces the problem to the binary case — so the lower
//! bound carries over. This test exercises the reduction end to end.

use bitdissem_core::dynamics::{Minority, Voter};
use bitdissem_core::multi::{
    binary_restriction, check_support_restriction, MultiMinority, MultiProtocol, MultiVoter,
};
use bitdissem_core::{Configuration, Opinion, Protocol};
use bitdissem_markov::AggregateChain;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;

#[test]
fn multi_protocols_satisfy_the_support_restriction() {
    for m in 2..=4usize {
        for ell in 1..=3usize {
            let voter = MultiVoter::new(m, ell).unwrap();
            assert!(check_support_restriction(&voter, 100).is_ok(), "voter m={m} l={ell}");
            let minority = MultiMinority::new(m, ell).unwrap();
            assert!(check_support_restriction(&minority, 100).is_ok(), "minority m={m} l={ell}");
        }
    }
}

#[test]
fn binary_restrictions_reduce_to_the_named_binary_dynamics() {
    let mv = MultiVoter::new(5, 2).unwrap();
    let rv = binary_restriction(&mv, 100).unwrap();
    let voter = Voter::new(2).unwrap();
    for k in 0..=2 {
        for own in Opinion::ALL {
            assert_eq!(rv.prob_one(own, k, 100), voter.prob_one(own, k, 100));
        }
    }

    let mm = MultiMinority::new(3, 4).unwrap();
    let rm = binary_restriction(&mm, 100).unwrap();
    let minority = Minority::new(4).unwrap();
    for k in 0..=4 {
        for own in Opinion::ALL {
            assert_eq!(rm.prob_one(own, k, 100), minority.prob_one(own, k, 100));
        }
    }
}

#[test]
fn reduced_protocol_runs_in_the_binary_engine_with_the_same_law() {
    // The restriction of MultiMinority(m=4, l=3) must generate exactly the
    // binary Minority(3) process: compare a one-round empirical mean to the
    // exact binary chain.
    let n = 40u64;
    let x0 = 28u64;
    let mm = MultiMinority::new(4, 3).unwrap();
    let restricted = binary_restriction(&mm, n).unwrap();
    let chain = AggregateChain::build(&Minority::new(3).unwrap(), n, Opinion::One).unwrap();
    let exact = chain.expected_next(x0);

    let reps = 20_000u64;
    let start = Configuration::new(n, Opinion::One, x0).unwrap();
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(0xF2, rep));
        let mut sim = AggregateSim::new(&restricted, start).unwrap();
        sim.step_round(&mut rng);
        total += sim.configuration().ones() as f64;
    }
    let mean = total / reps as f64;
    assert!((mean - exact).abs() < 0.2, "restricted mean {mean} vs exact binary {exact}");
}

#[test]
fn support_violating_protocol_is_rejected() {
    struct Teleport;
    impl MultiProtocol for Teleport {
        fn num_opinions(&self) -> usize {
            3
        }
        fn sample_size(&self) -> usize {
            1
        }
        fn decide(&self, _own: usize, _counts: &[usize], _n: u64) -> Vec<f64> {
            vec![0.0, 0.0, 1.0] // always jumps to opinion 2, even unseen
        }
        fn name(&self) -> String {
            "teleport".into()
        }
    }
    assert!(check_support_restriction(&Teleport, 10).is_err());
}
