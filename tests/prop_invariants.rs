//! Property-based cross-crate invariants: for *randomly generated*
//! protocols (not just the named dynamics), the paper's structural results
//! hold.

use bitdissem_analysis::jump::y_constant;
use bitdissem_analysis::{BiasPolynomial, LowerBoundWitness, RootStructure};
use bitdissem_core::{Configuration, GTable, Opinion};
use bitdissem_markov::AggregateChain;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::Simulator;
use proptest::prelude::*;

/// Strategy: a random own-independent protocol table with the Prop-3
/// endpoints forced (the class the paper quantifies over, restricted to
/// own-independence for brevity; own-dependent variants are covered below).
fn arb_symmetric_table() -> impl Strategy<Value = GTable> {
    (1usize..=6).prop_flat_map(|ell| proptest::collection::vec(0.0f64..=1.0, ell + 1)).prop_map(
        |mut g| {
            let last = g.len() - 1;
            g[0] = 0.0;
            g[last] = 1.0;
            GTable::symmetric(g).expect("valid probabilities")
        },
    )
}

/// Strategy: a random own-dependent protocol with Prop-3 endpoints.
fn arb_table() -> impl Strategy<Value = GTable> {
    (1usize..=5)
        .prop_flat_map(|ell| {
            (
                proptest::collection::vec(0.0f64..=1.0, ell + 1),
                proptest::collection::vec(0.0f64..=1.0, ell + 1),
            )
        })
        .prop_map(|(mut g0, mut g1)| {
            g0[0] = 0.0;
            let last = g1.len() - 1;
            g1[last] = 1.0;
            GTable::new(g0, g1).expect("valid probabilities")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degree bound: `deg F_n <= l + 1`, the pivot of Theorem 12.
    #[test]
    fn bias_degree_is_at_most_ell_plus_one(table in arb_table()) {
        let f = BiasPolynomial::from_table(&table, 256, "random".into());
        if let Some(d) = f.as_polynomial().degree() {
            prop_assert!(d <= table.sample_size() + 1, "degree {} > l+1", d);
        }
    }

    /// Root-count bound: at most `l + 1` sign-crossing roots in [0, 1].
    #[test]
    fn root_count_is_bounded(table in arb_table()) {
        let f = BiasPolynomial::from_table(&table, 256, "random".into());
        let rs = RootStructure::analyze(&f);
        prop_assert!(rs.roots().len() <= table.sample_size() + 1);
    }

    /// Proposition 3 forces F_n(0) = F_n(1) = 0.
    #[test]
    fn endpoints_are_roots(table in arb_symmetric_table()) {
        let f = BiasPolynomial::from_table(&table, 256, "random".into());
        prop_assert!(f.eval(0.0).abs() < 1e-9);
        prop_assert!(f.eval(1.0).abs() < 1e-9);
    }

    /// Proposition 5: the exact drift sits within ±1 of x + n·F(x/n),
    /// verified against the independently built Markov chain.
    #[test]
    fn proposition5_sandwich_for_random_protocols(table in arb_table()) {
        let n = 48u64;
        let f = BiasPolynomial::from_table(&table, n, "random".into());
        for correct in Opinion::ALL {
            let chain = AggregateChain::build(&table, n, correct).expect("valid");
            for x in chain.states().step_by(5) {
                let exact = chain.expected_next(x);
                let center = x as f64 + f.drift_at(x);
                prop_assert!(
                    (exact - center).abs() <= 1.0 + 1e-9,
                    "z={} x={}: {} vs {}", correct, x, exact, center
                );
            }
        }
    }

    /// Proposition 4: one simulated round from X_t <= c·n never exceeds
    /// y(c, l)·n (the failure probability is exp(-2·sqrt(n)) ~ 1e-20 here).
    #[test]
    fn proposition4_jump_bound_for_random_protocols(
        table in arb_symmetric_table(),
        c_mil in 100u64..900,
        seed in 0u64..1_000,
    ) {
        let n = 512u64;
        let c = c_mil as f64 / 1000.0;
        let x0 = ((c * n as f64).floor() as u64).clamp(1, n - 1);
        let start = Configuration::new(n, Opinion::One, x0).expect("consistent");
        let mut sim = AggregateSim::new(&table, start).expect("valid");
        let mut rng = rng_from(seed);
        sim.step_round(&mut rng);
        let x1 = sim.configuration().ones() as f64;
        let y = y_constant(c, table.sample_size());
        prop_assert!(x1 <= y * n as f64, "x0={} -> x1={} > y*n={}", x0, x1, y * n as f64);
    }

    /// The witness is always constructible and internally consistent: the
    /// start configuration is valid, the threshold lies strictly between
    /// the start and the adversarial consensus, and crossing is required
    /// before convergence.
    #[test]
    fn witness_is_well_formed_for_random_protocols(table in arb_table()) {
        let n = 1024u64;
        let w = LowerBoundWitness::construct(&table, n).expect("valid");
        let start = w.start();
        prop_assert_eq!(start.n(), n);
        // The start must not already be past the threshold.
        prop_assert!(!w.crossed(start.ones()),
            "start {} already crossed threshold {}", start.ones(), w.threshold());
        // The correct consensus always counts as crossed.
        let consensus = match start.correct() {
            Opinion::One => n,
            Opinion::Zero => 0,
        };
        prop_assert!(w.crossed(consensus));
    }

    /// Consensus absorption: for any Prop-3 protocol, one round from the
    /// correct consensus stays there (both correct opinions).
    #[test]
    fn consensus_is_absorbing_for_random_protocols(
        table in arb_table(),
        seed in 0u64..1_000,
    ) {
        let n = 64;
        for correct in Opinion::ALL {
            let start = Configuration::correct_consensus(n, correct);
            let mut sim = AggregateSim::new(&table, start).expect("valid");
            let mut rng = rng_from(seed);
            for _ in 0..5 {
                sim.step_round(&mut rng);
                prop_assert!(sim.configuration().is_correct_consensus());
            }
        }
    }
}
