//! Failure injection: invalid inputs and broken protocols must be rejected
//! or detected at every layer, never silently mis-simulated.

use bitdissem_analysis::BiasPolynomial;
use bitdissem_core::dynamics::Stay;
use bitdissem_core::{Configuration, GTable, Opinion, Protocol, ProtocolError};
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::AggregateChain;
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::rng_from;
use bitdissem_sim::run::Simulator;

/// A deliberately broken protocol that returns an out-of-range
/// "probability".
#[derive(Clone, Copy)]
struct Overconfident;

impl Protocol for Overconfident {
    fn sample_size(&self) -> usize {
        2
    }
    fn prob_one(&self, _own: Opinion, k: usize, _n: u64) -> f64 {
        k as f64 // 2.0 at k = 2 — not a probability
    }
    fn name(&self) -> String {
        "overconfident".into()
    }
}

/// A protocol that returns NaN.
#[derive(Clone, Copy)]
struct Nanny;

impl Protocol for Nanny {
    fn sample_size(&self) -> usize {
        1
    }
    fn prob_one(&self, _own: Opinion, _k: usize, _n: u64) -> f64 {
        f64::NAN
    }
    fn name(&self) -> String {
        "nanny".into()
    }
}

#[test]
fn invalid_probabilities_are_rejected_at_every_entry_point() {
    let start = Configuration::all_wrong(16, Opinion::One);
    assert!(matches!(
        AggregateSim::new(&Overconfident, start),
        Err(ProtocolError::InvalidProbability { .. })
    ));
    assert!(AggregateChain::build(&Overconfident, 16, Opinion::One).is_err());
    assert!(BiasPolynomial::build(&Overconfident, 16).is_err());

    assert!(AggregateSim::new(&Nanny, start).is_err());
    assert!(AggregateChain::build(&Nanny, 16, Opinion::Zero).is_err());
}

#[test]
fn gtable_rejects_malformed_rows() {
    assert!(GTable::new(vec![], vec![]).is_err());
    assert!(GTable::new(vec![0.0], vec![0.0]).is_err());
    assert!(GTable::new(vec![0.0, 2.0], vec![0.0, 1.0]).is_err());
    assert!(GTable::new(vec![0.0, f64::INFINITY], vec![0.0, 1.0]).is_err());
    assert!(GTable::new(vec![0.0, 1.0], vec![0.0, 1.0, 0.5]).is_err());
}

#[test]
fn configuration_rejects_impossible_states() {
    assert!(Configuration::new(0, Opinion::One, 0).is_err());
    assert!(Configuration::new(1, Opinion::One, 1).is_err());
    assert!(Configuration::new(4, Opinion::One, 5).is_err());
    assert!(Configuration::new(4, Opinion::One, 0).is_err()); // source holds 1
    assert!(Configuration::new(4, Opinion::Zero, 4).is_err()); // source holds 0
}

#[test]
fn unsolvable_protocols_are_reported_not_mis_solved() {
    // Stay: consensus unreachable — the exact solver must say so, and the
    // simulator must simply never converge (no bogus result).
    let stay = Stay::new(1);
    let chain = AggregateChain::build(&stay, 12, Opinion::One).unwrap();
    assert!(expected_hitting_times(&chain).is_none());

    let start = Configuration::new(12, Opinion::One, 6).unwrap();
    let mut sim = AggregateSim::new(&stay, start).unwrap();
    let mut rng = rng_from(1);
    for _ in 0..100 {
        sim.step_round(&mut rng);
        assert_eq!(sim.configuration().ones(), 6, "Stay must never move");
    }
}

#[test]
fn minimum_population_works_end_to_end() {
    // n = 2: one source, one agent. Everything should still function.
    use bitdissem_core::dynamics::Voter;
    use bitdissem_sim::run::{run_to_consensus, Outcome};
    let voter = Voter::new(1).unwrap();
    let start = Configuration::all_wrong(2, Opinion::One);
    let mut sim = AggregateSim::new(&voter, start).unwrap();
    let mut rng = rng_from(2);
    match run_to_consensus(&mut sim, &mut rng, 10_000) {
        Outcome::Converged { rounds } => assert!(rounds <= 10_000),
        Outcome::TimedOut { .. } => panic!("n = 2 voter must converge quickly"),
    }

    let chain = AggregateChain::build(&voter, 2, Opinion::One).unwrap();
    let times = expected_hitting_times(&chain).unwrap();
    // From the all-wrong state (x = 1), the single non-source agent samples
    // the source w.p. 1/2 each round: E[T] = 2.
    assert!((times.from_state(1) - 2.0).abs() < 1e-9);
}

#[test]
fn witness_construction_handles_every_named_protocol() {
    use bitdissem_analysis::LowerBoundWitness;
    use bitdissem_core::dynamics::{constant_sample_suite, AntiVoter, NoisyVoter};
    for protocol in constant_sample_suite() {
        let w = LowerBoundWitness::construct(&protocol, 64).unwrap();
        assert!(!w.crossed(w.start().ones()), "{}", protocol.name());
    }
    // Even Prop-3-violating protocols get a structurally valid witness
    // (the analysis is defined for any table; solvability is separate).
    let w = LowerBoundWitness::construct(&NoisyVoter::new(1, 0.1).unwrap(), 64).unwrap();
    assert!(w.start().n() == 64);
    let w = LowerBoundWitness::construct(&AntiVoter::new(2).unwrap(), 64).unwrap();
    assert!(w.threshold() <= 64);
}

#[test]
fn channel_rejects_bad_noise_levels_from_any_protocol() {
    use bitdissem_core::channel::with_observation_noise;
    use bitdissem_core::dynamics::Minority;
    let m = Minority::new(3).unwrap();
    for bad in [-0.01, 0.500_001, 1.0, f64::NAN, f64::INFINITY] {
        assert!(with_observation_noise(&m, bad, 100).is_err(), "delta = {bad}");
    }
}
