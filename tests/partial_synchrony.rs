//! Structural invariants of the partial-synchrony scheduler: it must agree
//! with the parallel setting at `m = n−1`, with the sequential one at
//! `m = 1`, and preserve martingale structure for `F ≡ 0` protocols at
//! every batch size in between.

use bitdissem_core::dynamics::{LazyVoter, Voter};
use bitdissem_core::{Configuration, Opinion};
use bitdissem_sim::partial::PartialSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::Simulator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For the Voter (and any F ≡ 0 protocol) the count of ones is a
    /// near-martingale at EVERY batch size: the one-step mean shift is
    /// bounded by the source term alone (≤ m/(n−1) ≤ 1 per step).
    #[test]
    fn voter_is_a_martingale_at_every_batch_size(
        batch_pow in 0u32..6,
        x0_frac in 0.2f64..0.8,
    ) {
        let n = 128u64;
        let batch = (1u64 << batch_pow).min(n - 1);
        let x0 = ((x0_frac * n as f64) as u64).clamp(1, n - 1);
        let start = Configuration::new(n, Opinion::One, x0).unwrap();
        let reps = 4_000u64;
        let mut total = 0.0;
        for rep in 0..reps {
            let mut rng = rng_from(replication_seed(0x91 ^ batch, rep));
            let mut sim = PartialSim::new(&Voter::new(1).unwrap(), start, batch).unwrap();
            sim.step_batch(&mut rng);
            total += sim.configuration().ones() as f64;
        }
        let mean = total / reps as f64;
        // Per-step drift is the source term only: |E[X'] − x| ≤ 1.
        // Sampling error over 4000 reps of a ±batch-bounded step adds noise.
        let se = (batch as f64).sqrt() / (reps as f64).sqrt() * 3.0;
        prop_assert!(
            (mean - x0 as f64).abs() <= 1.0 + 5.0 * se + 0.1,
            "batch={} x0={}: mean {}", batch, x0, mean
        );
    }

    /// The per-step change is bounded by the batch size.
    #[test]
    fn step_changes_are_bounded_by_batch(batch in 1u64..40, seed in 0u64..500) {
        let n = 64u64;
        prop_assume!(batch < n);
        let start = Configuration::new(n, Opinion::One, 30).unwrap();
        let mut sim = PartialSim::new(&LazyVoter::new(2, 0.3).unwrap(), start, batch).unwrap();
        let mut rng = rng_from(seed);
        let mut prev = sim.configuration().ones();
        for _ in 0..50 {
            sim.step_batch(&mut rng);
            let cur = sim.configuration().ones();
            prop_assert!(cur.abs_diff(prev) <= batch);
            prev = cur;
        }
    }
}

#[test]
fn round_activation_budget_matches_parallel_normalization() {
    // One step_round at any m performs ⌈(n−1)/m⌉ steps of m activations —
    // i.e. at least n−1 and at most n−1+m activations per round.
    let n = 101u64;
    for batch in [1u64, 7, 25, 50, 100] {
        let start = Configuration::new(n, Opinion::One, 40).unwrap();
        let mut sim = PartialSim::new(&Voter::new(1).unwrap(), start, batch).unwrap();
        let mut rng = rng_from(9);
        sim.step_round(&mut rng);
        let activations = sim.steps() * batch;
        assert!(activations >= n - 1, "batch {batch}: {activations}");
        assert!(activations < n - 1 + batch, "batch {batch}: {activations}");
    }
}
