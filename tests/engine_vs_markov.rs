//! Cross-crate validation: the simulation engine reproduces the exact
//! Markov-chain law computed independently by `bitdissem-markov`.

use bitdissem_core::dynamics::{Majority, Minority, Voter};
use bitdissem_core::{Configuration, Opinion, Protocol};
use bitdissem_markov::absorbing::expected_hitting_times;
use bitdissem_markov::{AggregateChain, SequentialChain};
use bitdissem_sim::aggregate::AggregateSim;
use bitdissem_sim::rng::{replication_seed, rng_from};
use bitdissem_sim::run::{run_to_consensus, Outcome, Simulator};
use bitdissem_sim::sequential::SequentialSim;

fn simulated_mean_tau<P: Protocol>(
    protocol: &P,
    start: Configuration,
    reps: u64,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(seed, rep));
        let mut sim = AggregateSim::new(protocol, start).expect("valid");
        match run_to_consensus(&mut sim, &mut rng, 10_000_000) {
            Outcome::Converged { rounds } => total += rounds as f64,
            Outcome::TimedOut { .. } => panic!("unexpected timeout"),
        }
    }
    total / reps as f64
}

#[test]
fn voter_mean_convergence_matches_exact_hitting_time() {
    let n = 20;
    let voter = Voter::new(1).unwrap();
    let start = Configuration::all_wrong(n, Opinion::One);
    let chain = AggregateChain::build(&voter, n, Opinion::One).unwrap();
    let exact = expected_hitting_times(&chain).unwrap().from_state(start.ones());
    let sim = simulated_mean_tau(&voter, start, 1500, 0xAB);
    let rel = (sim - exact).abs() / exact;
    assert!(rel < 0.1, "sim {sim} vs exact {exact} (rel {rel})");
}

#[test]
fn majority_mean_from_favorable_start_matches_exact() {
    let n = 24;
    let majority = Majority::new(3).unwrap();
    let x0 = 22; // close to the target so the heavy dip tail is negligible
    let start = Configuration::new(n, Opinion::One, x0).unwrap();
    let chain = AggregateChain::build(&majority, n, Opinion::One).unwrap();
    let exact = expected_hitting_times(&chain).unwrap().from_state(x0);
    let sim = simulated_mean_tau(&majority, start, 4000, 0xAC);
    let rel = (sim - exact).abs() / exact;
    assert!(rel < 0.1, "sim {sim} vs exact {exact} (rel {rel})");
}

#[test]
fn one_round_distribution_matches_transition_row() {
    // Empirical one-round distribution vs the exact convolution row, in
    // total variation.
    let n = 30u64;
    let minority = Minority::new(3).unwrap();
    let x0 = 20u64;
    let chain = AggregateChain::build(&minority, n, Opinion::One).unwrap();
    let row = chain.transition_row(x0);
    let reps = 60_000;
    let mut counts = vec![0u64; n as usize + 1];
    let start = Configuration::new(n, Opinion::One, x0).unwrap();
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(0xAD, rep));
        let mut sim = AggregateSim::new(&minority, start).unwrap();
        sim.step_round(&mut rng);
        counts[sim.configuration().ones() as usize] += 1;
    }
    let tv: f64 =
        counts.iter().zip(&row).map(|(&c, &p)| (c as f64 / reps as f64 - p).abs()).sum::<f64>()
            / 2.0;
    assert!(tv < 0.02, "total variation {tv}");
}

#[test]
fn sequential_simulator_matches_birth_death_chain() {
    let n = 16;
    let voter = Voter::new(1).unwrap();
    let x0 = 8;
    let sc = SequentialChain::build(&voter, n, Opinion::One).unwrap();
    let exact = sc.expected_rounds_from(x0).unwrap();
    let reps = 2500u64;
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = rng_from(replication_seed(0xAE, rep));
        let start = Configuration::new(n, Opinion::One, x0).unwrap();
        let mut sim = SequentialSim::new(&voter, start).unwrap();
        match run_to_consensus(&mut sim, &mut rng, 1_000_000) {
            Outcome::Converged { rounds } => total += rounds as f64,
            Outcome::TimedOut { .. } => panic!("unexpected timeout"),
        }
    }
    let sim_mean = total / reps as f64;
    // Whole-round measurement adds up to 1 round of discretization.
    assert!((sim_mean - exact).abs() < 0.1 * exact + 1.0, "sim {sim_mean} vs exact {exact}");
}

#[test]
fn drift_matches_bias_polynomial_through_both_routes() {
    // The exact chain's E[X'|x] and the analysis crate's x + n·F(x/n)
    // agree within the ±1 source term, for several protocols and both
    // correct opinions.
    use bitdissem_analysis::BiasPolynomial;
    let n = 64;
    for protocol in [
        Box::new(Voter::new(2).unwrap()) as Box<dyn Protocol + Send + Sync>,
        Box::new(Minority::new(4).unwrap()),
        Box::new(Majority::new(5).unwrap()),
    ] {
        let f = BiasPolynomial::build(&protocol, n).unwrap();
        for correct in Opinion::ALL {
            let chain = AggregateChain::build(&protocol, n, correct).unwrap();
            for x in chain.states() {
                let exact = chain.expected_next(x);
                let center = x as f64 + f.drift_at(x);
                assert!(
                    (exact - center).abs() <= 1.0 + 1e-9,
                    "{} z={correct} x={x}: exact {exact} vs center {center}",
                    protocol.name()
                );
            }
        }
    }
}
